"""Container modules: Sequential, Identity, Flatten, Dropout."""

from __future__ import annotations

import numpy as np

from repro.autograd import ops_basic, ops_shape
from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.utils.rng import new_rng


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self._layer_order: list[str] = []
        for i, layer in enumerate(layers):
            name = f"layer{i}"
            setattr(self, name, layer)
            self._layer_order.append(name)

    def append(self, layer: Module) -> "Sequential":
        name = f"layer{len(self._layer_order)}"
        setattr(self, name, layer)
        self._layer_order.append(name)
        return self

    def __iter__(self):
        return (getattr(self, name) for name in self._layer_order)

    def __len__(self) -> int:
        return len(self._layer_order)

    def __getitem__(self, index: int) -> Module:
        return getattr(self, self._layer_order[index])

    def forward(self, x: Tensor) -> Tensor:
        for layer in self:
            x = layer(x)
        return x


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    def __init__(self, start_axis: int = 1):
        super().__init__()
        self.start_axis = start_axis

    def forward(self, x: Tensor) -> Tensor:
        return ops_shape.flatten(x, self.start_axis)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng=None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = new_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return ops_basic.mul(x, mask)
