"""Activation layers (module wrappers over the functional ops)."""

from __future__ import annotations

from repro.autograd import ops_activation
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops_activation.relu(x)


class ReLU6(Module):
    """Clipped ReLU used throughout MobileNetV2."""

    def forward(self, x: Tensor) -> Tensor:
        return ops_activation.relu6(x)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return ops_activation.leaky_relu(x, self.negative_slope)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops_activation.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops_activation.tanh(x)
