"""Base :class:`Module` with parameter/buffer/submodule registration."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.autograd.tensor import Tensor
from repro.errors import ShapeError
from repro.nn.parameter import Parameter


class Module:
    """Base class for all neural-network layers and models.

    Subclasses assign :class:`Parameter`, buffers (via
    :meth:`register_buffer`) and sub-``Module`` instances as attributes;
    registration happens automatically in ``__setattr__``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_forward_hooks", {})
        object.__setattr__(self, "training", True)

    # -- attribute registration -------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._buffers.pop(name, None)
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable persistent state (e.g. BN running stats)."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a previously registered buffer in place of the binding."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r} on {type(self).__name__}")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # -- traversal ----------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` for self and all descendants."""
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for mod_name, module in self.named_modules(prefix):
            for par_name, par in module._parameters.items():
                full = f"{mod_name}.{par_name}" if mod_name else par_name
                yield full, par

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for mod_name, module in self.named_modules(prefix):
            for buf_name, buf in module._buffers.items():
                full = f"{mod_name}.{buf_name}" if mod_name else buf_name
                yield full, buf

    # -- train / eval ---------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode on self and all descendants."""
        for module in self.modules():
            object.__setattr__(module, "training", bool(mode))
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        """Drop accumulated gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # -- state dict -------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameters and buffers keyed by qualified name."""
        state: dict[str, np.ndarray] = {}
        for name, par in self.named_parameters():
            state[name] = par.data.copy()
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters and buffers from :meth:`state_dict` output."""
        own_params = dict(self.named_parameters())
        own_buffer_owners: dict[str, tuple[Module, str]] = {}
        for mod_name, module in self.named_modules():
            for buf_name in module._buffers:
                full = f"{mod_name}.{buf_name}" if mod_name else buf_name
                own_buffer_owners[full] = (module, buf_name)
        missing = (set(own_params) | set(own_buffer_owners)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffer_owners))
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            if name in own_params:
                par = own_params[name]
                if par.data.shape != value.shape:
                    raise ShapeError(
                        f"parameter {name!r}: expected shape {par.data.shape}, "
                        f"got {value.shape}"
                    )
                par.data = value.astype(par.data.dtype).copy()
            elif name in own_buffer_owners:
                module, buf_name = own_buffer_owners[name]
                module.set_buffer(buf_name, value.copy())

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of scalar parameters."""
        return sum(
            p.size for p in self.parameters() if p.requires_grad or not trainable_only
        )

    # -- forward hooks ----------------------------------------------------------
    def register_forward_hook(self, hook) -> "HookHandle":
        """Call ``hook(module, args, output)`` after every forward.

        A hook returning a non-None value replaces the module's output
        (observability hooks return None). Returns a :class:`HookHandle`
        whose ``remove()`` detaches the hook.
        """
        handle = HookHandle(self._forward_hooks)
        self._forward_hooks[handle.key] = hook
        return handle

    # -- forward ----------------------------------------------------------------
    def forward(self, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        out = self.forward(*args, **kwargs)
        if self._forward_hooks:
            for hook in list(self._forward_hooks.values()):
                result = hook(self, args, out)
                if result is not None:
                    out = result
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class HookHandle:
    """Removable registration of one forward hook."""

    _next_key = 0

    def __init__(self, registry: dict):
        self._registry = registry
        self.key = HookHandle._next_key
        HookHandle._next_key += 1

    def remove(self) -> None:
        self._registry.pop(self.key, None)
