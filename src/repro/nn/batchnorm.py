"""Batch normalisation over NCHW feature maps."""

from __future__ import annotations

import numpy as np

from repro.autograd import ops_basic, ops_reduce, ops_shape
from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class BatchNorm2d(Module):
    """Per-channel batch normalisation with affine transform.

    In training mode, batch statistics are used and running statistics are
    updated with ``momentum``. In eval mode the running statistics are used,
    which is also the regime in which BN folding
    (:mod:`repro.quant.bn_folding`) is valid.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.gamma = Parameter(np.ones(num_features, dtype=np.float32))
        self.beta = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mu = ops_reduce.mean(x, axis=(0, 2, 3), keepdims=True)
            centered = ops_basic.sub(x, mu)
            var = ops_reduce.mean(
                ops_basic.mul(centered, centered), axis=(0, 2, 3), keepdims=True
            )
            # Update running stats outside the graph.
            batch_mean = mu.data.reshape(-1)
            batch_var = var.data.reshape(-1)
            m = self.momentum
            self.set_buffer("running_mean", (1 - m) * self.running_mean + m * batch_mean)
            self.set_buffer("running_var", (1 - m) * self.running_var + m * batch_var)
            denom = ops_basic.sqrt(ops_basic.add(var, self.eps))
            xhat = ops_basic.div(centered, denom)
        else:
            mean = self.running_mean.reshape(1, -1, 1, 1)
            std = np.sqrt(self.running_var + self.eps).reshape(1, -1, 1, 1)
            xhat = ops_basic.div(ops_basic.sub(x, mean), std)
        gamma = ops_shape.reshape(self.gamma, (1, self.num_features, 1, 1))
        beta = ops_shape.reshape(self.beta, (1, self.num_features, 1, 1))
        return ops_basic.add(ops_basic.mul(xhat, gamma), beta)

    def __repr__(self) -> str:  # pragma: no cover
        return f"BatchNorm2d({self.num_features})"
