"""Run identity and environment metadata for telemetry records.

Every structured run (:mod:`repro.obs.events`) is stamped with a short run
id plus enough environment metadata — git commit, python/numpy versions,
platform — that a JSONL log read months later identifies exactly what
produced it. All collection is best-effort: a missing git binary or a
non-repo working directory degrades to absent keys, never to an error.
"""

from __future__ import annotations

import platform
import subprocess
import sys
import time
import uuid


def new_run_id() -> str:
    """Short unique run identifier (12 hex chars)."""
    return uuid.uuid4().hex[:12]


def git_metadata(cwd: str | None = None) -> dict:
    """Best-effort ``{commit, branch, dirty}`` of the working directory.

    Returns ``{}`` when git is unavailable or ``cwd`` is not a repository.
    """

    def _git(*args: str) -> str | None:
        try:
            out = subprocess.run(
                ["git", *args],
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=5,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return out.stdout.strip() if out.returncode == 0 else None

    commit = _git("rev-parse", "HEAD")
    if commit is None:
        return {}
    meta = {"commit": commit}
    branch = _git("rev-parse", "--abbrev-ref", "HEAD")
    if branch:
        meta["branch"] = branch
    status = _git("status", "--porcelain")
    if status is not None:
        meta["dirty"] = bool(status)
    return meta


def environment_metadata() -> dict:
    """Python/numpy versions and platform identity."""
    import numpy as np

    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "argv": list(sys.argv),
    }


def run_metadata(command: str | None = None, include_git: bool = True) -> dict:
    """Full metadata block for a ``run_start`` event."""
    meta = {
        "started_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        **environment_metadata(),
    }
    if command is not None:
        meta["command"] = command
    if include_git:
        git = git_metadata()
        if git:
            meta["git"] = git
    return meta
