"""Run identity and environment metadata for telemetry records.

Every structured run (:mod:`repro.obs.events`) is stamped with a short run
id plus enough environment metadata — git commit, python/numpy versions,
platform — that a JSONL log read months later identifies exactly what
produced it. All collection is best-effort: a missing git binary or a
non-repo working directory degrades to absent keys, never to an error.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
import time
import uuid

# Environment knobs that change performance behaviour are stamped into
# run metadata and benchmark files so perf trajectories stay comparable
# across machines (docs/PERFORMANCE.md). The list comes from the runtime
# knob registry (repro.config), so new knobs are covered automatically.


def _perf_env_vars() -> tuple[str, ...]:
    from repro import config

    return config.perf_env_vars()


def new_run_id() -> str:
    """Short unique run identifier (12 hex chars)."""
    return uuid.uuid4().hex[:12]


def git_metadata(cwd: str | None = None) -> dict:
    """Best-effort ``{commit, branch, dirty}`` of the working directory.

    Returns ``{}`` when git is unavailable or ``cwd`` is not a repository.
    """

    def _git(*args: str) -> str | None:
        try:
            out = subprocess.run(
                ["git", *args],
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=5,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return out.stdout.strip() if out.returncode == 0 else None

    commit = _git("rev-parse", "HEAD")
    if commit is None:
        return {}
    meta = {"commit": commit}
    branch = _git("rev-parse", "--abbrev-ref", "HEAD")
    if branch:
        meta["branch"] = branch
    status = _git("status", "--porcelain")
    if status is not None:
        meta["dirty"] = bool(status)
    return meta


def environment_metadata() -> dict:
    """Python/numpy versions, platform identity and perf-relevant env."""
    import numpy as np

    import repro

    meta = {
        "repro_version": repro.__version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "argv": list(sys.argv),
        "cpu_count": os.cpu_count(),
    }
    env = {k: os.environ[k] for k in _perf_env_vars() if k in os.environ}
    if env:
        meta["env"] = env
    return meta


def provenance(cwd: str | None = None) -> dict:
    """Compact run-provenance block for benchmark files (``BENCH_*.json``).

    Repro version, git SHA when available, ``cpu_count`` and the
    performance env vars — everything needed to compare perf numbers
    recorded on different machines.
    """
    import numpy as np

    import repro

    meta = {
        "repro_version": repro.__version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "env": {k: os.environ.get(k) for k in _perf_env_vars() if k in os.environ},
    }
    git = git_metadata(cwd)
    if git:
        meta["git_sha"] = git["commit"]
        if "dirty" in git:
            meta["git_dirty"] = git["dirty"]
    return meta


def run_metadata(command: str | None = None, include_git: bool = True) -> dict:
    """Full metadata block for a ``run_start`` event."""
    meta = {
        "started_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        **environment_metadata(),
    }
    if command is not None:
        meta["command"] = command
    if include_git:
        git = git_metadata()
        if git:
            meta["git"] = git
    return meta
