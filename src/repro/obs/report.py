"""Offline summarisation of a JSONL run log (``repro report``).

Reconstructs, from the event stream alone, the things someone asks first
about a finished run: what command ran, how accuracy evolved, where the
wall time went (per epoch and per stage), and which timers were hottest.
The final accuracy reported here is byte-identical to what the producing
command printed — both read the same ``eval`` events.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.obs import events as ev
from repro.obs import metrics as met_mod


@dataclass
class StageTime:
    """Duration of one named pipeline stage."""

    name: str
    duration: float
    accuracy_before: float | None = None
    accuracy_after: float | None = None


@dataclass
class RunSummary:
    """Everything ``repro report`` prints, as structured data."""

    run_id: str
    command: str | None = None
    status: str | None = None
    wall_time: float = 0.0
    num_events: int = 0
    skipped_records: int = 0
    final_accuracy: float | None = None
    final_accuracy_name: str | None = None
    evals: list[tuple[str, float]] = field(default_factory=list)
    accuracy_trajectory: list[float] = field(default_factory=list)
    epoch_times: list[float] = field(default_factory=list)
    train_loss: list[float] = field(default_factory=list)
    stages: list[StageTime] = field(default_factory=list)
    hottest: list[dict] = field(default_factory=list)
    counters: list[dict] = field(default_factory=list)
    metrics: dict | None = None  # last metrics-event snapshot in the log
    metrics_snapshots: int = 0  # how many metrics events the log held
    trace: dict | None = None  # trace event payload (path + top self-time)

    @property
    def plan_cache(self) -> dict:
        """Kernel-plan cache pressure (``approx.plan_cache_*`` counters)."""
        out = {}
        for row in self.counters:
            name = str(row.get("name", ""))
            if name.startswith("approx.plan_"):
                short = name[len("approx.plan_"):]
                out[short] = int(row.get("calls", 0))
                if row.get("bytes"):
                    out[f"{short}_bytes"] = int(row["bytes"])
        return out

    def latency_quantiles(self) -> dict[str, dict[str, float]]:
        """p50/p95/p99 of every histogram series in the final snapshot."""
        if not self.metrics:
            return {}
        out = {}
        for key, payload in self.metrics.get("histograms", {}).items():
            out[key] = met_mod.snapshot_quantiles(payload)
        return out

    def plan_cache_hit_rate(self) -> "list[tuple[float, float]] | None":
        """``(t, cumulative hit rate)`` over the run's metrics snapshots.

        Needs the raw records; populated by :func:`summarize_run` when the
        log carries ``metrics`` events with plan-cache counters.
        """
        return self._hit_rate_series or None

    _hit_rate_series: list = field(default_factory=list, repr=False)

    def to_dict(self) -> dict:
        """Full machine-readable view (``repro report --format json``)."""
        payload = asdict(self)
        payload.pop("_hit_rate_series", None)
        payload["plan_cache"] = self.plan_cache
        payload["latency_quantiles"] = self.latency_quantiles()
        hit_rate = self.plan_cache_hit_rate()
        if hit_rate:
            payload["plan_cache_hit_rate"] = hit_rate
        payload["evals"] = [
            {"name": name, "accuracy": accuracy} for name, accuracy in self.evals
        ]
        payload["quantile_rel_error"] = met_mod.QUANTILE_REL_ERROR
        return payload


def summarize_run(path: str | Path, strict: bool = False) -> RunSummary:
    """Parse and summarise one JSONL event log.

    By default a truncated final line (the normal artifact of a crashed
    run) is skipped and counted in ``skipped_records``; ``strict=True``
    restores the old raise-on-any-corruption behaviour.
    """
    skipped: list[str] = []
    records = ev.read_events(path, strict=strict, skipped=skipped)
    if not records:
        raise ReproError(f"event log is empty: {path}")
    summary = RunSummary(run_id=str(records[0].get("run", "?")), num_events=len(records))
    summary.skipped_records = len(skipped)
    summary.wall_time = max(float(r.get("t", 0.0)) for r in records)

    for r in ev.iter_events(records, ev.RUN_START):
        summary.command = r.get("command") or summary.command
    for r in ev.iter_events(records, ev.RUN_END):
        summary.status = r.get("status")

    for r in ev.iter_events(records, ev.EPOCH):
        if r.get("accuracy") is not None:
            summary.accuracy_trajectory.append(float(r["accuracy"]))
        if r.get("epoch_time") is not None:
            summary.epoch_times.append(float(r["epoch_time"]))
        if r.get("loss") is not None:
            summary.train_loss.append(float(r["loss"]))

    for r in ev.iter_events(records, ev.EVAL):
        summary.evals.append((str(r.get("name", "?")), float(r["accuracy"])))
    if summary.evals:
        summary.final_accuracy_name, summary.final_accuracy = summary.evals[-1]
    elif summary.accuracy_trajectory:
        summary.final_accuracy_name = "last epoch"
        summary.final_accuracy = summary.accuracy_trajectory[-1]

    starts: dict[str, float] = {}
    for r in ev.iter_events(records, ev.STAGE):
        name = str(r.get("name", "?"))
        if r.get("phase") == "start":
            starts[name] = float(r.get("t", 0.0))
        elif r.get("phase") == "end":
            duration = r.get("duration")
            if duration is None and name in starts:
                duration = float(r.get("t", 0.0)) - starts[name]
            summary.stages.append(
                StageTime(
                    name=name,
                    duration=float(duration or 0.0),
                    accuracy_before=r.get("accuracy_before"),
                    accuracy_after=r.get("accuracy_after"),
                )
            )

    for r in ev.iter_events(records, ev.PROFILE):
        summary.hottest = list(r.get("timers", []))[:10]
        summary.counters = list(r.get("counters", []))

    for r in ev.iter_events(records, ev.METRICS):
        snapshot = r.get("metrics")
        if not isinstance(snapshot, dict):
            continue
        summary.metrics_snapshots += 1
        summary.metrics = snapshot
        counters = snapshot.get("counters", {})
        hits = float(counters.get("plan_cache.hit", 0))
        misses = float(counters.get("plan_cache.miss", 0))
        if hits + misses > 0:
            summary._hit_rate_series.append(
                (float(r.get("t", 0.0)), hits / (hits + misses))
            )

    for r in ev.iter_events(records, ev.TRACE):
        summary.trace = {
            k: v for k, v in r.items() if k in ("path", "spans", "top_self_time")
        }

    return summary


def render_summary(summary: RunSummary) -> str:
    """Human-readable multi-line rendering of a :class:`RunSummary`."""
    lines = [f"run {summary.run_id}: {summary.command or '(unknown command)'}"]
    status = summary.status or "(no run_end event)"
    lines.append(f"status: {status}   events: {summary.num_events}   "
                 f"wall time: {summary.wall_time:.2f}s")
    if summary.skipped_records:
        lines.append(
            f"warning: skipped {summary.skipped_records} truncated record(s) "
            f"at end of log (crashed run?)"
        )

    if summary.evals:
        lines.append("evaluations:")
        for name, accuracy in summary.evals:
            lines.append(f"  {name:28s} {100 * accuracy:7.2f}%")
    if summary.accuracy_trajectory:
        traj = "  ".join(f"{100 * a:.2f}" for a in summary.accuracy_trajectory)
        lines.append(f"accuracy by epoch [%]: {traj}")
    if summary.epoch_times:
        total = sum(summary.epoch_times)
        mean = total / len(summary.epoch_times)
        times = "  ".join(f"{t:.2f}" for t in summary.epoch_times)
        lines.append(
            f"epoch wall time [s]: {times}  (total {total:.2f}, mean {mean:.2f})"
        )
    if summary.stages:
        lines.append("stages:")
        for stage in summary.stages:
            accs = ""
            if stage.accuracy_before is not None and stage.accuracy_after is not None:
                accs = (
                    f"  {100 * stage.accuracy_before:.2f}% -> "
                    f"{100 * stage.accuracy_after:.2f}%"
                )
            lines.append(f"  {stage.name:36s} {stage.duration:8.2f}s{accs}")
    if summary.hottest:
        lines.append("hottest timers:")
        lines.append(f"  {'name':32s} {'calls':>9s} {'total[s]':>10s}")
        for row in summary.hottest:
            lines.append(
                f"  {row.get('name', '?'):32s} {row.get('calls', 0):9d} "
                f"{row.get('total', 0.0):10.4f}"
            )
    cache = summary.plan_cache
    if cache:
        hits = cache.get("cache_hit", 0)
        misses = cache.get("cache_miss", 0)
        lookups = hits + misses
        rate = f"  ({100.0 * hits / lookups:.1f}% hit)" if lookups else ""
        lines.append("plan cache:")
        lines.append(
            f"  hits {hits}  misses {misses}  "
            f"revalidates {cache.get('cache_revalidate', 0)}  "
            f"bypasses {cache.get('cache_bypass', 0)}  "
            f"plans built {cache.get('built', 0)} "
            f"({cache.get('built_bytes', 0)} bytes)  "
            f"repaired {cache.get('repaired', 0)}  "
            f"workspace allocs {cache.get('workspace_alloc', 0)} "
            f"({cache.get('workspace_alloc_bytes', 0)} bytes){rate}"
        )
    quantiles = summary.latency_quantiles()
    if quantiles:
        lines.append(
            f"metrics ({summary.metrics_snapshots} snapshot(s), quantile error "
            f"<= {100 * met_mod.QUANTILE_REL_ERROR:.1f}%):"
        )
        lines.append(
            f"  {'series':32s} {'count':>8s} {'p50':>12s} {'p95':>12s} {'p99':>12s}"
        )
        for key in sorted(quantiles):
            payload = summary.metrics["histograms"][key]
            row = quantiles[key]
            lines.append(
                f"  {key:32s} {payload.get('count', 0):8d}"
                f" {row.get('p50', float('nan')):12.6f}"
                f" {row.get('p95', float('nan')):12.6f}"
                f" {row.get('p99', float('nan')):12.6f}"
            )
        gauges = summary.metrics.get("gauges", {}) if summary.metrics else {}
        if gauges:
            lines.append("  gauges:")
            for key in sorted(gauges):
                lines.append(f"    {key:32s} {gauges[key]:.6g}")
    hit_rate = summary.plan_cache_hit_rate()
    if hit_rate:
        series = "  ".join(f"{100 * rate:.1f}" for _, rate in hit_rate[-12:])
        lines.append(f"plan cache hit rate over time [%]: {series}")
    if summary.trace:
        lines.append("trace:")
        if summary.trace.get("path"):
            lines.append(
                f"  chrome trace: {summary.trace['path']} "
                f"({summary.trace.get('spans', '?')} span(s))"
            )
        for row in list(summary.trace.get("top_self_time", []))[:5]:
            lines.append(
                f"  {row.get('name', '?'):32s} {row.get('calls', 0):6d} calls "
                f"self {row.get('self_s', 0.0):9.4f}s"
            )
    if summary.final_accuracy is not None:
        lines.append(
            f"final accuracy:   {100 * summary.final_accuracy:.2f}% "
            f"({summary.final_accuracy_name})"
        )
    return "\n".join(lines)
