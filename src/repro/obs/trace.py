"""Hierarchical spans with cross-process propagation and Chrome export.

A :class:`span` is a timed, named block with a parent — the span that was
open on the same thread when it started. Spans nest into a tree per run
(``span("epoch")`` containing ``span("approx.matmul", m=64)`` …), are
stamped with nanosecond wall-anchored monotonic timestamps plus the
process/thread that ran them, and are collected by a process-wide
:class:`TraceRecorder`.

Tracing is **off by default**: a disabled ``span`` costs one module
attribute read and a branch, so span sites live permanently in the hot
paths, exactly like :mod:`repro.obs.profiling` timers (which open a
matching span automatically whenever tracing is enabled).

Cross-process propagation (``repro.parallel``): the parent captures a
:class:`TraceContext` — trace id plus the id of the span open at the
fan-out call site — and ships it with each task. Worker processes adopt
it (:func:`adopt_context`), so their root spans parent onto the
dispatching span; finished worker spans travel back with the task result
and are merged into the parent recorder (:meth:`TraceRecorder.merge`)
with their original ids, timestamps and parentage intact. Span ids embed
the pid, so they stay unique across the fleet, and timestamps are
wall-anchored (``time_ns`` at recorder creation plus a
``perf_counter_ns`` delta), so spans from different processes on one
machine line up on a shared timeline.

Export: :func:`to_chrome_trace` renders any span list as Chrome
``trace_event`` JSON — loadable in ``chrome://tracing`` or Perfetto —
and :func:`self_time_summary` folds a span list into the per-name
self-time table behind the ``repro trace`` CLI.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.obs.runmeta import new_run_id

enabled = False

_id_lock = threading.Lock()
_id_counter = 0
_local = threading.local()  # .stack: open span ids; .inherited: cross-task parent


def _next_span_id() -> str:
    """Process-unique span id; the pid prefix keeps it fleet-unique."""
    global _id_counter
    with _id_lock:
        _id_counter += 1
        n = _id_counter
    return f"{os.getpid():x}-{n:x}"


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (picklable, so workers can ship them back)."""

    name: str
    span_id: str
    parent_id: str | None
    start_ns: int  # wall-anchored monotonic nanoseconds
    dur_ns: int
    pid: int
    tid: int
    attrs: dict = field(default_factory=dict)

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.dur_ns


class TraceRecorder:
    """Thread-safe collector of finished spans for one trace.

    The wall/perf anchor pair taken at construction makes ``now_ns``
    monotonic within the process yet comparable across processes: a
    forked worker's fresh recorder re-anchors against the same wall
    clock, so merged spans share one timeline.
    """

    def __init__(self, trace_id: str | None = None):
        self.trace_id = trace_id or new_run_id()
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []
        self._anchor_wall = time.time_ns()
        self._anchor_perf = time.perf_counter_ns()

    def now_ns(self) -> int:
        """Wall-anchored monotonic nanoseconds."""
        return self._anchor_wall + (time.perf_counter_ns() - self._anchor_perf)

    def add(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)

    def merge(self, records: list[SpanRecord]) -> None:
        """Fold worker-captured spans in (ids/parentage/times unchanged)."""
        with self._lock:
            self._spans.extend(records)

    def spans(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_recorder = TraceRecorder()


def get_trace_recorder() -> TraceRecorder:
    """The process-wide :class:`TraceRecorder`."""
    return _recorder


def enable_tracing() -> None:
    global enabled
    enabled = True


def disable_tracing() -> None:
    global enabled
    enabled = False


def reset_tracing(trace_id: str | None = None) -> TraceRecorder:
    """Drop collected spans and start a fresh trace id."""
    global _recorder
    _recorder = TraceRecorder(trace_id)
    _stack().clear()
    _local.inherited = None
    return _recorder


class tracing:
    """Enable tracing for a block and hand back the recorder.

    >>> with tracing() as recorder:
    ...     run_sweep(...)
    >>> write_chrome_trace("trace.json", recorder.spans())
    """

    def __init__(self, reset: bool = True):
        self._reset = reset

    def __enter__(self) -> TraceRecorder:
        if self._reset:
            reset_tracing()
        self._was_enabled = enabled
        enable_tracing()
        return _recorder

    def __exit__(self, *exc) -> None:
        if not self._was_enabled:
            disable_tracing()


def current_span_id() -> str | None:
    """Id of the innermost open span on this thread (or inherited parent)."""
    stack = _stack()
    if stack:
        return stack[-1]
    return getattr(_local, "inherited", None)


class span:
    """Context manager recording one hierarchical span (no-op when disabled).

    Keyword arguments become span attributes, rendered in the Chrome
    trace's ``args`` — keep them JSON-representable scalars.
    """

    __slots__ = ("name", "attrs", "_active", "_id", "_parent", "_start")

    def __init__(self, name: str, **attrs):
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "span":
        self._active = enabled
        if self._active:
            stack = _stack()
            self._parent = stack[-1] if stack else getattr(_local, "inherited", None)
            self._id = _next_span_id()
            stack.append(self._id)
            self._start = _recorder.now_ns()
        return self

    def __exit__(self, *exc) -> None:
        if not self._active:
            return
        end = _recorder.now_ns()
        stack = _stack()
        if not stack or stack[-1] != self._id:
            # reset_tracing() ran inside the block; the sample belongs to
            # the discarded trace — drop it rather than corrupt the stack.
            return
        stack.pop()
        _recorder.add(
            SpanRecord(
                name=self.name,
                span_id=self._id,
                parent_id=self._parent,
                start_ns=self._start,
                dur_ns=max(end - self._start, 0),
                pid=os.getpid(),
                tid=threading.get_ident(),
                attrs=self.attrs,
            )
        )


def record_span(
    name: str,
    start_ns: int,
    end_ns: int,
    parent_id: str | None = None,
    **attrs,
) -> None:
    """Record one externally-timed span (no-op when tracing is disabled).

    For spans whose start and end live on different threads — e.g. a
    serving request enqueued by a client thread and completed by a
    replica worker — where the ``span`` context manager cannot bracket
    the interval. Timestamps must come from ``get_trace_recorder().now_ns()``
    so they share the recorder's wall-clock anchor.
    """
    if not enabled:
        return
    _recorder.add(
        SpanRecord(
            name=name,
            span_id=_next_span_id(),
            parent_id=parent_id,
            start_ns=int(start_ns),
            dur_ns=max(int(end_ns) - int(start_ns), 0),
            pid=os.getpid(),
            tid=threading.get_ident(),
            attrs=attrs,
        )
    )


# ----------------------------------------------------------------------
# cross-process / cross-thread propagation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceContext:
    """What travels with a ``repro.parallel`` task: enough to re-link."""

    trace_id: str
    parent_id: str | None
    enabled: bool


def trace_context() -> TraceContext:
    """Capture the current trace identity for hand-off to a worker."""
    return TraceContext(
        trace_id=_recorder.trace_id, parent_id=current_span_id(), enabled=enabled
    )


def adopt_context(context: TraceContext) -> None:
    """Adopt a parent-shipped :class:`TraceContext` inside a worker process.

    Starts a fresh recorder under the parent's trace id (pooled workers
    are reused across tasks, so per-task state must not leak) and
    installs ``context.parent_id`` as this thread's inherited parent —
    the worker's root spans link straight onto the dispatching span.
    """
    global _recorder, enabled
    _recorder = TraceRecorder(context.trace_id)
    _stack().clear()
    _local.inherited = context.parent_id
    enabled = context.enabled


def drain_spans() -> list[SpanRecord]:
    """Snapshot-and-clear the recorder (the worker's per-task capture)."""
    spans = _recorder.spans()
    _recorder.clear()
    return spans


def call_with_parent(parent_id: str | None, fn, *args):
    """Run ``fn(*args)`` with ``parent_id`` as this thread's span parent.

    The thread-backend analogue of :func:`adopt_context`: pool threads
    share the parent's recorder, but their span stacks start empty, so
    the dispatch-site parent is installed for the duration of the task.
    """
    previous = getattr(_local, "inherited", None)
    _local.inherited = parent_id
    try:
        with span("parallel.task"):
            return fn(*args)
    finally:
        _local.inherited = previous


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def to_chrome_trace(
    spans: list[SpanRecord], trace_id: str | None = None, main_pid: int | None = None
) -> dict:
    """Render spans as a Chrome ``trace_event`` JSON object.

    Each span becomes one complete (``"ph": "X"``) event with
    microsecond ``ts``/``dur``; span/parent ids and attributes land in
    ``args`` so the tree survives the export. Process-name metadata
    events label the main process vs workers for the Perfetto sidebar.

    Timestamps are rebased to the earliest span (the absolute wall
    anchor is kept in ``otherData.base_ns``): relative microseconds stay
    within float64's exact-integer range, so
    :func:`read_chrome_trace` round-trips ``start_ns`` exactly.
    """
    from repro.obs.events import _jsonable

    base_ns = min((s.start_ns for s in spans), default=0)
    events = []
    pids: dict[int, int] = {}
    for s in spans:
        pids.setdefault(s.pid, len(pids))
        args = {"span_id": s.span_id}
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        for key, value in s.attrs.items():
            args[str(key)] = _jsonable(value)
        events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": "repro",
                "ts": (s.start_ns - base_ns) / 1000.0,
                "dur": s.dur_ns / 1000.0,
                "pid": s.pid,
                "tid": s.tid,
                "args": args,
            }
        )
    main_pid = os.getpid() if main_pid is None else main_pid
    for pid in sorted(pids):
        label = "repro (main)" if pid == main_pid else f"repro worker {pid}"
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id or _recorder.trace_id, "base_ns": base_ns},
    }


def write_chrome_trace(
    path: str | Path, spans: list[SpanRecord] | None = None, trace_id: str | None = None
) -> Path:
    """Write the (or the recorder's) spans as a Chrome trace file."""
    if spans is None:
        spans = _recorder.spans()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(spans, trace_id)), encoding="utf-8")
    return path


def read_chrome_trace(path: str | Path) -> list[SpanRecord]:
    """Load span records back from a file written by :func:`write_chrome_trace`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"trace file not found: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path}: invalid trace JSON: {exc}") from exc
    events = payload.get("traceEvents", payload if isinstance(payload, list) else [])
    base_ns = 0
    if isinstance(payload, dict):
        base_ns = int(payload.get("otherData", {}).get("base_ns", 0))
    spans = []
    for event in events:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = str(args.pop("span_id", ""))
        parent_id = args.pop("parent_id", None)
        spans.append(
            SpanRecord(
                name=str(event.get("name", "?")),
                span_id=span_id,
                parent_id=str(parent_id) if parent_id is not None else None,
                start_ns=base_ns + int(round(float(event.get("ts", 0.0)) * 1000.0)),
                dur_ns=int(round(float(event.get("dur", 0.0)) * 1000.0)),
                pid=int(event.get("pid", 0)),
                tid=int(event.get("tid", 0)),
                attrs=args,
            )
        )
    return spans


def self_time_summary(spans: list[SpanRecord]) -> list[dict]:
    """Per-name flame summary: calls, total and self wall time, descending.

    Self time subtracts the duration of *direct* children (matched by
    ``parent_id``), so the table answers "where was the time actually
    spent" across the whole fleet of processes.
    """
    child_time: dict[str, int] = {}
    for s in spans:
        if s.parent_id is not None:
            child_time[s.parent_id] = child_time.get(s.parent_id, 0) + s.dur_ns
    rows: dict[str, dict] = {}
    for s in spans:
        row = rows.setdefault(
            s.name, {"name": s.name, "calls": 0, "total_s": 0.0, "self_s": 0.0}
        )
        row["calls"] += 1
        row["total_s"] += s.dur_ns / 1e9
        row["self_s"] += max(s.dur_ns - child_time.get(s.span_id, 0), 0) / 1e9
    out = sorted(rows.values(), key=lambda r: r["self_s"], reverse=True)
    for row in out:
        row["total_s"] = round(row["total_s"], 6)
        row["self_s"] = round(row["self_s"], 6)
    return out


def render_flame_summary(spans: list[SpanRecord], top: int = 15) -> str:
    """Fixed-width text table of :func:`self_time_summary` (``repro trace``)."""
    rows = self_time_summary(spans)
    pids = sorted({s.pid for s in spans})
    lines = [
        f"{len(spans)} span(s) across {len(pids)} process(es): "
        + ", ".join(str(p) for p in pids),
        f"{'span':36s} {'calls':>8s} {'total[s]':>10s} {'self[s]':>10s}",
    ]
    for row in rows[:top]:
        lines.append(
            f"{row['name']:36s} {row['calls']:8d} {row['total_s']:10.4f} "
            f"{row['self_s']:10.4f}"
        )
    return "\n".join(lines)
