"""Opt-in per-layer statistics hooks.

A :class:`StatsHook` attaches to any :class:`~repro.nn.module.Module`
through the forward-hook mechanism and accumulates, per epoch:

- **activation range** — min/max/mean/std of the layer's output;
- **approximation error** ``ε(y) = ỹ − y`` — for quantized layers with a
  non-exact multiplier attached, the hook re-runs the layer exactly on the
  same input and accumulates the output delta (mean/std/|max|), i.e. the
  quantities the paper's Figs. 2/3 characterise per multiplier;
- **gradient norm** — L2 norm over the layer's parameter gradients,
  sampled by :meth:`observe_gradients` (the trainer's telemetry callback
  calls it once per epoch, after the last batch).

Error tracking doubles the layer's forward cost (one exact re-execution
per call), which is why hooks are opt-in and detachable; activation
statistics alone are a few vector reductions per forward.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # runtime use is duck-typed to keep repro.obs import-light
    from repro.nn.module import Module


@dataclass
class LayerStats:
    """One epoch's accumulated statistics for one layer."""

    name: str
    calls: int = 0
    samples: int = 0
    act_min: float = math.inf
    act_max: float = -math.inf
    act_mean: float = 0.0
    act_std: float = 0.0
    eps_samples: int = 0
    eps_mean: float = 0.0
    eps_std: float = 0.0
    eps_absmax: float = 0.0
    grad_norm: float | None = None

    def to_dict(self) -> dict:
        record = {
            "layer": self.name,
            "calls": self.calls,
            "samples": self.samples,
            "act_min": self.act_min if self.samples else None,
            "act_max": self.act_max if self.samples else None,
            "act_mean": self.act_mean,
            "act_std": self.act_std,
        }
        if self.eps_samples:
            record.update(
                eps_mean=self.eps_mean,
                eps_std=self.eps_std,
                eps_absmax=self.eps_absmax,
            )
        if self.grad_norm is not None:
            record["grad_norm"] = self.grad_norm
        return record


class _Accumulator:
    """Streaming count/sum/sumsq/min/max over arrays."""

    __slots__ = ("n", "total", "total_sq", "lo", "hi")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.n = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.lo = math.inf
        self.hi = -math.inf

    def observe(self, values: np.ndarray) -> None:
        if values.size == 0:
            return
        v = values.astype(np.float64, copy=False)
        self.n += v.size
        self.total += float(v.sum())
        self.total_sq += float(np.square(v).sum())
        self.lo = min(self.lo, float(v.min()))
        self.hi = max(self.hi, float(v.max()))

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        if not self.n:
            return 0.0
        var = self.total_sq / self.n - self.mean**2
        return math.sqrt(max(var, 0.0))


class StatsHook:
    """Forward hook recording activation and approximation-error statistics.

    Parameters
    ----------
    module:
        The layer to observe.
    name:
        Qualified layer name used in snapshots and events.
    track_error:
        Re-run quantized layers exactly to measure ``ε(y)``. Only takes
        effect on modules exposing ``set_multiplier`` (the quantized GEMM
        layers) with a non-exact multiplier attached.
    """

    def __init__(self, module: Module, name: str = "", track_error: bool = True):
        self.module = module
        self.name = name or type(module).__name__
        self.track_error = track_error
        self._act = _Accumulator()
        self._eps = _Accumulator()
        self._calls = 0
        self._grad_norm: float | None = None
        self._reentrant = False
        self._handle = module.register_forward_hook(self._on_forward)

    # -- collection ------------------------------------------------------
    def _on_forward(self, module: Module, args: tuple, output) -> None:
        if self._reentrant:
            return
        out = output.data if hasattr(output, "data") else np.asarray(output)
        self._calls += 1
        self._act.observe(out)
        if self.track_error and self._has_approximation(module):
            exact = self._exact_forward(module, args)
            if exact is not None:
                self._eps.observe(out - exact)

    @staticmethod
    def _has_approximation(module: Module) -> bool:
        mult = getattr(module, "multiplier", None)
        return (
            hasattr(module, "set_multiplier")
            and mult is not None
            and not getattr(mult, "is_exact", True)
        )

    def _exact_forward(self, module: Module, args: tuple) -> np.ndarray | None:
        """Re-run ``module`` with exact integer execution on the same input."""
        from repro.autograd.grad_mode import no_grad

        mult, error_model = module.multiplier, module.error_model
        self._reentrant = True
        try:
            module.set_multiplier(None, None)
            with no_grad():
                exact = module(*args)
        finally:
            module.set_multiplier(mult, error_model)
            self._reentrant = False
        return exact.data if hasattr(exact, "data") else np.asarray(exact)

    def observe_gradients(self) -> float | None:
        """L2 norm over all parameter gradients currently on the module."""
        total = 0.0
        seen = False
        for p in self.module.parameters():
            if p.grad is not None:
                total += float(np.square(p.grad).sum())
                seen = True
        self._grad_norm = math.sqrt(total) if seen else None
        return self._grad_norm

    # -- snapshotting ----------------------------------------------------
    def snapshot(self, reset: bool = True) -> LayerStats:
        """Current accumulated statistics; ``reset`` starts a fresh epoch."""
        stats = LayerStats(
            name=self.name,
            calls=self._calls,
            samples=self._act.n,
            act_min=self._act.lo,
            act_max=self._act.hi,
            act_mean=self._act.mean,
            act_std=self._act.std,
            eps_samples=self._eps.n,
            eps_mean=self._eps.mean,
            eps_std=self._eps.std,
            eps_absmax=max(abs(self._eps.lo), abs(self._eps.hi)) if self._eps.n else 0.0,
            grad_norm=self._grad_norm,
        )
        if reset:
            self._act.reset()
            self._eps.reset()
            self._calls = 0
        return stats

    def remove(self) -> None:
        """Detach the hook from the module."""
        self._handle.remove()


def attach_stats_hooks(
    model: Module,
    layer_types: tuple[type, ...] | None = None,
    track_error: bool = True,
) -> dict[str, StatsHook]:
    """Attach a :class:`StatsHook` to selected layers of ``model``.

    By default hooks every *leaf* module (no submodules of its own); pass
    ``layer_types`` to restrict — e.g. ``(QuantConv2d, QuantLinear)``.
    Returns ``{qualified_name: hook}``; call :func:`detach_stats_hooks`
    (or each hook's ``remove``) when done.
    """
    hooks: dict[str, StatsHook] = {}
    for name, module in model.named_modules():
        if not name:
            continue
        if layer_types is not None:
            if not isinstance(module, layer_types):
                continue
        elif module._modules:
            continue
        hooks[name] = StatsHook(module, name=name, track_error=track_error)
    return hooks


def detach_stats_hooks(hooks: dict[str, StatsHook]) -> None:
    """Remove every hook previously attached by :func:`attach_stats_hooks`."""
    for hook in hooks.values():
        hook.remove()
