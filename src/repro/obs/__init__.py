"""Observability: structured run telemetry, profiling and layer statistics.

Four cooperating pieces (see ``docs/OBSERVABILITY.md``):

- :mod:`repro.obs.events` — process-wide :class:`EventLog` writing typed
  JSONL records (``run_start``/``stage``/``epoch``/``eval``/
  ``layer_stats``/``profile``/``run_end``) to pluggable sinks;
- :mod:`repro.obs.console` — leveled human console and the event →
  console rendering sink;
- :mod:`repro.obs.profiling` — permanently-installed, off-by-default
  timers/counters on the hot paths, aggregated into a
  :class:`ProfileReport`;
- :mod:`repro.obs.stats` — opt-in :class:`StatsHook` recording per-layer
  activation ranges, approximation-error deltas ``ε(y)`` and gradient
  norms;
- :mod:`repro.obs.report` — offline summarisation of a JSONL log
  (``repro report``).
"""

from repro.obs.console import Console, ConsoleSink, format_event, get_console, set_verbosity
from repro.obs.events import (
    DEBUG,
    EPOCH,
    ERROR,
    EVAL,
    EVENT_TYPES,
    INFO,
    LAYER_STATS,
    PROFILE,
    RUN_END,
    RUN_START,
    STAGE,
    WARNING,
    CollectingSink,
    EventLog,
    JsonlSink,
    Sink,
    get_event_log,
    iter_events,
    logging_to,
    read_events,
    set_event_log,
)
from repro.obs.profiling import (
    COUNTER_MAX,
    ProfileReport,
    TimerStat,
    count,
    disable_profiling,
    enable_profiling,
    profile_report,
    profiled,
    reset_profiling,
    timer,
)
from repro.obs.report import RunSummary, StageTime, render_summary, summarize_run
from repro.obs.runmeta import environment_metadata, git_metadata, new_run_id, run_metadata
from repro.obs.stats import (
    LayerStats,
    StatsHook,
    attach_stats_hooks,
    detach_stats_hooks,
)

__all__ = [
    # events
    "EventLog",
    "Sink",
    "JsonlSink",
    "CollectingSink",
    "get_event_log",
    "set_event_log",
    "logging_to",
    "read_events",
    "iter_events",
    "EVENT_TYPES",
    "RUN_START",
    "RUN_END",
    "STAGE",
    "EPOCH",
    "EVAL",
    "LAYER_STATS",
    "PROFILE",
    "DEBUG",
    "INFO",
    "WARNING",
    "ERROR",
    # console
    "Console",
    "ConsoleSink",
    "format_event",
    "get_console",
    "set_verbosity",
    # profiling
    "timer",
    "count",
    "profiled",
    "profile_report",
    "enable_profiling",
    "disable_profiling",
    "reset_profiling",
    "ProfileReport",
    "TimerStat",
    "COUNTER_MAX",
    # stats
    "StatsHook",
    "LayerStats",
    "attach_stats_hooks",
    "detach_stats_hooks",
    # report
    "RunSummary",
    "StageTime",
    "summarize_run",
    "render_summary",
    # runmeta
    "new_run_id",
    "run_metadata",
    "git_metadata",
    "environment_metadata",
]
