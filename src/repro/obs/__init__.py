"""Observability: structured run telemetry, profiling and layer statistics.

Four cooperating pieces (see ``docs/OBSERVABILITY.md``):

- :mod:`repro.obs.events` — process-wide :class:`EventLog` writing typed
  JSONL records (``run_start``/``stage``/``epoch``/``eval``/
  ``layer_stats``/``profile``/``run_end``) to pluggable sinks;
- :mod:`repro.obs.console` — leveled human console and the event →
  console rendering sink;
- :mod:`repro.obs.profiling` — permanently-installed, off-by-default
  timers/counters on the hot paths, aggregated into a
  :class:`ProfileReport`;
- :mod:`repro.obs.stats` — opt-in :class:`StatsHook` recording per-layer
  activation ranges, approximation-error deltas ``ε(y)`` and gradient
  norms;
- :mod:`repro.obs.trace` — hierarchical spans with cross-process
  propagation, exported as Chrome ``trace_event`` timelines
  (``repro trace``);
- :mod:`repro.obs.metrics` — process-wide counters/gauges/streaming
  histograms with exact cross-worker merge and a Prometheus exporter;
- :mod:`repro.obs.report` — offline summarisation of a JSONL log
  (``repro report``).
"""

from repro.obs.console import Console, ConsoleSink, format_event, get_console, set_verbosity
from repro.obs.events import (
    DEBUG,
    EPOCH,
    ERROR,
    EVAL,
    EVENT_TYPES,
    INFO,
    LAYER_STATS,
    METRICS,
    PROFILE,
    RUN_END,
    RUN_START,
    STAGE,
    TRACE,
    WARNING,
    CollectingSink,
    EventLog,
    JsonlSink,
    Sink,
    get_event_log,
    iter_events,
    logging_to,
    manifest_path,
    read_events,
    segment_paths,
    set_event_log,
)
from repro.obs.metrics import (
    QUANTILE_REL_ERROR,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collecting_metrics,
    disable_metrics,
    emit_snapshot,
    enable_metrics,
    get_metrics,
    reset_metrics,
    set_metrics,
    snapshot_quantiles,
    to_prometheus,
)
from repro.obs.profiling import (
    COUNTER_MAX,
    ProfileReport,
    TimerStat,
    count,
    disable_profiling,
    enable_profiling,
    profile_report,
    profiled,
    reset_profiling,
    timer,
)
from repro.obs.report import RunSummary, StageTime, render_summary, summarize_run
from repro.obs.runmeta import (
    environment_metadata,
    git_metadata,
    new_run_id,
    provenance,
    run_metadata,
)
from repro.obs.stats import (
    LayerStats,
    StatsHook,
    attach_stats_hooks,
    detach_stats_hooks,
)
from repro.obs.trace import (
    SpanRecord,
    TraceContext,
    TraceRecorder,
    adopt_context,
    call_with_parent,
    current_span_id,
    disable_tracing,
    drain_spans,
    enable_tracing,
    get_trace_recorder,
    read_chrome_trace,
    record_span,
    render_flame_summary,
    reset_tracing,
    self_time_summary,
    span,
    to_chrome_trace,
    trace_context,
    tracing,
    write_chrome_trace,
)

__all__ = [
    # events
    "EventLog",
    "Sink",
    "JsonlSink",
    "CollectingSink",
    "get_event_log",
    "set_event_log",
    "logging_to",
    "read_events",
    "iter_events",
    "manifest_path",
    "segment_paths",
    "EVENT_TYPES",
    "RUN_START",
    "RUN_END",
    "STAGE",
    "EPOCH",
    "EVAL",
    "LAYER_STATS",
    "PROFILE",
    "METRICS",
    "TRACE",
    "DEBUG",
    "INFO",
    "WARNING",
    "ERROR",
    # console
    "Console",
    "ConsoleSink",
    "format_event",
    "get_console",
    "set_verbosity",
    # profiling
    "timer",
    "count",
    "profiled",
    "profile_report",
    "enable_profiling",
    "disable_profiling",
    "reset_profiling",
    "ProfileReport",
    "TimerStat",
    "COUNTER_MAX",
    # stats
    "StatsHook",
    "LayerStats",
    "attach_stats_hooks",
    "detach_stats_hooks",
    # report
    "RunSummary",
    "StageTime",
    "summarize_run",
    "render_summary",
    # runmeta
    "new_run_id",
    "run_metadata",
    "git_metadata",
    "environment_metadata",
    "provenance",
    # trace
    "span",
    "SpanRecord",
    "TraceRecorder",
    "TraceContext",
    "tracing",
    "enable_tracing",
    "disable_tracing",
    "reset_tracing",
    "get_trace_recorder",
    "current_span_id",
    "record_span",
    "trace_context",
    "adopt_context",
    "drain_spans",
    "call_with_parent",
    "to_chrome_trace",
    "write_chrome_trace",
    "read_chrome_trace",
    "self_time_summary",
    "render_flame_summary",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "QUANTILE_REL_ERROR",
    "get_metrics",
    "set_metrics",
    "enable_metrics",
    "disable_metrics",
    "reset_metrics",
    "collecting_metrics",
    "emit_snapshot",
    "snapshot_quantiles",
    "to_prometheus",
]
