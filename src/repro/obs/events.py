"""Structured event log: machine-readable JSONL records of a run.

An :class:`EventLog` is a sequence of typed records — ``run_start``,
``stage``, ``epoch``, ``eval``, ``layer_stats``, ``profile``, ``run_end``
— each stamped with the run id, a monotonic elapsed time ``t`` (seconds
since the log was opened) and a sequence number ``seq``. Records fan out
to any number of sinks: :class:`JsonlSink` writes one JSON object per
line; :class:`repro.obs.console.ConsoleSink` renders them for humans.

The process-wide default log (:func:`get_event_log`) starts with no sinks,
so instrumented code paths (trainer, pipeline stages) pay only a boolean
check until someone opts in — the CLI's ``--log-json`` flag, a test, or
:func:`logging_to`.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable, Iterator, TextIO

from repro.errors import ReproError
from repro.obs.runmeta import new_run_id

# Canonical event types. Free-form types are allowed (the schema is open),
# but everything the library itself emits is one of these.
RUN_START = "run_start"
RUN_END = "run_end"
STAGE = "stage"
EPOCH = "epoch"
EVAL = "eval"
LAYER_STATS = "layer_stats"
PROFILE = "profile"
CHECKPOINT = "checkpoint"
GUARD = "guard"
FAULT = "fault"
METRICS = "metrics"
TRACE = "trace"

EVENT_TYPES = (
    RUN_START,
    RUN_END,
    STAGE,
    EPOCH,
    EVAL,
    LAYER_STATS,
    PROFILE,
    CHECKPOINT,
    GUARD,
    FAULT,
    METRICS,
    TRACE,
)

# Severity levels, mirroring the stdlib logging scale.
DEBUG, INFO, WARNING, ERROR = 10, 20, 30, 40
_LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning", ERROR: "error"}


def level_name(level: int) -> str:
    """Human name of a severity level (exact match or nearest below)."""
    if level in _LEVEL_NAMES:
        return _LEVEL_NAMES[level]
    candidates = [k for k in _LEVEL_NAMES if k <= level]
    return _LEVEL_NAMES[max(candidates)] if candidates else "debug"


def level_from_name(name: str) -> int:
    """Numeric severity for a level name emitted by :func:`level_name`.

    Unknown names default to ``INFO`` — used when replaying records whose
    envelope came from another process (``repro.parallel``).
    """
    for value, known in _LEVEL_NAMES.items():
        if known == name:
            return value
    return INFO


class Sink:
    """A destination for event records. Subclasses override :meth:`emit`."""

    def emit(self, record: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources; further emits are undefined."""


class JsonlSink(Sink):
    """Write each record as one JSON line to a file or stream.

    ``max_bytes`` (path targets only) caps the live file: when the next
    line would push it past the cap, the current contents rotate into a
    numbered segment (``run.jsonl`` → ``run.0001.jsonl``) and a manifest
    (``run.jsonl.manifest.json``) records the segment order, so long
    sweeps and serving runs never grow one unbounded file.
    :func:`read_events` (and therefore ``repro report``) reads rotated
    logs back transparently.
    """

    def __init__(self, target: str | Path | TextIO, max_bytes: int | None = None):
        if max_bytes is not None and max_bytes < 1024:
            raise ReproError(f"max_bytes must be >= 1024, got {max_bytes}")
        self._path: Path | None = None
        self._max_bytes = max_bytes
        self._written = 0
        self._segments: list[str] = []
        if isinstance(target, (str, Path)):
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._path = path
            self._stream = path.open("w", encoding="utf-8")
            self._owns_stream = True
        else:
            if max_bytes is not None:
                raise ReproError("JsonlSink rotation requires a path target")
            self._stream = target
            self._owns_stream = False

    def emit(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        if (
            self._max_bytes is not None
            and self._written
            and self._written + len(line.encode("utf-8")) > self._max_bytes
        ):
            self._rotate()
        self._stream.write(line)
        self._stream.flush()
        self._written += len(line.encode("utf-8"))

    def _rotate(self) -> None:
        """Move the live file aside as the next segment and start fresh."""
        assert self._path is not None
        self._stream.close()
        segment = self._path.with_name(
            f"{self._path.stem}.{len(self._segments) + 1:04d}{self._path.suffix}"
        )
        self._path.replace(segment)
        self._segments.append(segment.name)
        from repro.utils.atomic import atomic_write_json

        atomic_write_json(
            manifest_path(self._path), {"version": 1, "segments": self._segments}
        )
        self._stream = self._path.open("w", encoding="utf-8")
        self._written = 0

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()


class CollectingSink(Sink):
    """Keep records in memory — convenient for tests and notebooks."""

    def __init__(self):
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)


class EventLog:
    """Fan-out event recorder with monotonic timestamps and a run id."""

    def __init__(
        self,
        run_id: str | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.run_id = run_id or new_run_id()
        self._clock = clock
        self._t0 = clock()
        self._seq = 0
        self._sinks: list[Sink] = []
        # Emission is serialised so concurrent emitters (threaded sweep
        # cells, stats hooks on worker threads) get unique seq numbers and
        # sinks never see interleaved records.
        self._emit_lock = threading.Lock()

    # -- sink management -------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True when at least one sink is attached (emits are not no-ops)."""
        return bool(self._sinks)

    def add_sink(self, sink: Sink) -> Sink:
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Sink) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def close(self) -> None:
        """Close and detach every sink."""
        for sink in self._sinks:
            sink.close()
        self._sinks.clear()

    # -- emission --------------------------------------------------------
    def emit(self, type: str, level: int = INFO, **payload) -> dict | None:
        """Record one event; returns the record, or None when disabled.

        Payload values must be JSON-serialisable (numpy scalars are
        normalised); the reserved keys ``type``/``run``/``seq``/``t``/
        ``level`` are stamped by the log itself.
        """
        if not self._sinks:
            return None
        with self._emit_lock:
            record = {
                "type": type,
                "run": self.run_id,
                "seq": self._seq,
                "t": round(self._clock() - self._t0, 6),
                "level": level_name(level),
            }
            for key, value in payload.items():
                record[key] = _jsonable(value)
            self._seq += 1
            for sink in self._sinks:
                sink.emit(record)
        return record

    # -- typed convenience emitters --------------------------------------
    def run_start(self, command: str | None = None, config: dict | None = None,
                  meta: dict | None = None) -> dict | None:
        return self.emit(RUN_START, command=command, config=config or {}, meta=meta or {})

    def run_end(self, status: str = "ok", **payload) -> dict | None:
        return self.emit(RUN_END, status=status, **payload)

    def stage(self, name: str, phase: str, **payload) -> dict | None:
        return self.emit(STAGE, name=name, phase=phase, **payload)

    def epoch(self, epoch: int, epochs: int, **payload) -> dict | None:
        return self.emit(EPOCH, epoch=epoch, epochs=epochs, **payload)

    def eval(self, name: str, accuracy: float, **payload) -> dict | None:
        return self.emit(EVAL, name=name, accuracy=float(accuracy), **payload)

    def checkpoint(self, action: str, **payload) -> dict | None:
        """Checkpoint lifecycle: ``save``/``resume``/``prune``/``corrupt``/…"""
        level = WARNING if action == "corrupt" else INFO
        return self.emit(CHECKPOINT, level=level, action=action, **payload)

    def guard(self, action: str, reason: str | None = None, **payload) -> dict | None:
        """Divergence-guard lifecycle: ``rollback``/``giveup``."""
        return self.emit(GUARD, level=WARNING, action=action, reason=reason, **payload)

    def fault(self, where: str, error_type: str, **payload) -> dict | None:
        """An isolated failure (e.g. one sweep cell) that did not kill the run."""
        return self.emit(FAULT, level=ERROR, where=where, error_type=error_type, **payload)


def _jsonable(value):
    """Normalise payload values (numpy scalars/arrays, paths) to JSON types."""
    import numpy as np

    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, Path):
        return str(value)
    return value


# ----------------------------------------------------------------------
# process-wide default log
# ----------------------------------------------------------------------
_global_log = EventLog()


def get_event_log() -> EventLog:
    """The process-wide default :class:`EventLog` (no sinks until opted in)."""
    return _global_log


def set_event_log(log: EventLog) -> EventLog:
    """Replace the default log; returns the previous one."""
    global _global_log
    previous, _global_log = _global_log, log
    return previous


class logging_to:
    """Context manager: route the default log to ``path`` for a block.

    >>> with logging_to("run.jsonl"):
    ...     train_model(...)
    """

    def __init__(
        self,
        target: str | Path | TextIO,
        run_id: str | None = None,
        max_bytes: int | None = None,
    ):
        self._target = target
        self._run_id = run_id
        self._max_bytes = max_bytes

    def __enter__(self) -> EventLog:
        self._log = EventLog(run_id=self._run_id)
        self._log.add_sink(JsonlSink(self._target, max_bytes=self._max_bytes))
        self._previous = set_event_log(self._log)
        return self._log

    def __exit__(self, *exc) -> None:
        set_event_log(self._previous)
        self._log.close()


# ----------------------------------------------------------------------
# reading logs back
# ----------------------------------------------------------------------
def manifest_path(path: str | Path) -> Path:
    """The rotation manifest sitting next to a JSONL log path."""
    path = Path(path)
    return path.with_name(path.name + ".manifest.json")


def segment_paths(path: str | Path) -> list[Path]:
    """Every file of a (possibly rotated) log, oldest segment first.

    Without a rotation manifest this is just ``[path]``; with one, the
    rotated segments it lists followed by the live file.
    """
    path = Path(path)
    manifest = manifest_path(path)
    if not manifest.exists():
        return [path]
    try:
        payload = json.loads(manifest.read_text(encoding="utf-8"))
        segments = [str(name) for name in payload["segments"]]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ReproError(f"invalid rotation manifest {manifest}: {exc}") from exc
    return [path.with_name(name) for name in segments] + [path]


def read_events(
    path: str | Path,
    strict: bool = True,
    skipped: list[str] | None = None,
) -> list[dict]:
    """Parse a JSONL event log, validating the envelope of every record.

    Size-rotated logs (see :class:`JsonlSink`) are reassembled
    transparently: the manifest's segments are read in order before the
    live file, so callers see one continuous record stream.

    A run killed mid-write (the normal artifact of a crash) leaves a
    truncated final line behind. With ``strict=False`` that final bad line
    is skipped with a :class:`UserWarning` — and appended to ``skipped``
    when a list is passed — instead of raising; corruption anywhere else
    in the stream still raises, in both modes.
    """
    path = Path(path)
    if not path.exists():
        raise ReproError(f"event log not found: {path}")
    lines: list[tuple[Path, int, str]] = []
    for segment in segment_paths(path):
        if not segment.exists():
            raise ReproError(f"rotated log segment not found: {segment}")
        lines.extend(
            (segment, lineno, line)
            for lineno, line in enumerate(
                segment.read_text(encoding="utf-8").splitlines(), 1
            )
            if line.strip()
        )
    records = []
    for index, (segment, lineno, line) in enumerate(lines):
        is_last = index == len(lines) - 1
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ReproError(f"{segment}:{lineno}: record is not an object")
            missing = {"type", "run", "seq", "t"} - set(record)
            if missing:
                raise ReproError(
                    f"{segment}:{lineno}: record missing envelope keys {sorted(missing)}"
                )
        except json.JSONDecodeError as exc:
            if not strict and is_last:
                _skip_final_line(segment, lineno, line, skipped)
                continue
            raise ReproError(f"{segment}:{lineno}: invalid JSON record: {exc}") from exc
        except ReproError:
            if not strict and is_last:
                _skip_final_line(segment, lineno, line, skipped)
                continue
            raise
        records.append(record)
    return records


def _skip_final_line(
    path: Path, lineno: int, line: str, skipped: list[str] | None
) -> None:
    import warnings

    warnings.warn(
        f"{path}:{lineno}: skipping truncated final record "
        f"(likely a crashed run); pass strict=True to raise instead",
        stacklevel=3,
    )
    if skipped is not None:
        skipped.append(line)


def iter_events(records: list[dict], type: str) -> Iterator[dict]:
    """Records of one event type, in sequence order."""
    return (r for r in records if r.get("type") == type)
