"""Process-wide metrics: counters, gauges and streaming log-bucket histograms.

A :class:`MetricsRegistry` holds three kinds of named series:

- **counters** — monotonically increasing tallies (plan-cache hits,
  Monte-Carlo draws);
- **gauges** — last-written values (per-layer ``ε(y)`` mean, grad norms);
- **histograms** — streaming distributions over a **fixed logarithmic
  bucket layout** (:data:`SUBBUCKETS` buckets per power of two between
  ``2**MIN_EXP`` and ``2**MAX_EXP``). Because every histogram in every
  process shares the same layout, worker histograms merge into the
  parent *exactly* — bucket counts, sums and extrema add, with no
  re-binning error — and quantile estimates carry a documented bound:
  :meth:`Histogram.quantile` matches ``numpy.quantile(...,
  method="inverted_cdf")`` within a relative error of
  :data:`QUANTILE_REL_ERROR` (the half-bucket geometric width,
  ``2**(1/(2*SUBBUCKETS)) - 1`` ≈ 4.4%).

Recording is **off by default**: the module-level helpers (:func:`inc`,
:func:`set_gauge`, :func:`observe`) cost one attribute read and a branch
while disabled, so metric sites live permanently in the hot paths.
Optional ``**tags`` qualify a name (``observe("sweep.cell_seconds", dt,
multiplier="mul8s_1kv9")``) and are folded into the series key.

Snapshots are JSON-safe dicts: :func:`emit_snapshot` writes one
``metrics`` event to the event log (the periodic time-series the trainer
emits per epoch and sweeps emit per cell), and
:func:`to_prometheus` renders a registry in the Prometheus text
exposition format for the serving layer.
"""

from __future__ import annotations

import math
import threading
import time

# ----------------------------------------------------------------------
# fixed histogram layout — shared by every process so merges are exact
# ----------------------------------------------------------------------
SUBBUCKETS = 8  # buckets per power of two
MIN_EXP = -30  # 2**-30 ≈ 9.3e-10: smallest resolvable positive value
MAX_EXP = 34  # 2**34 ≈ 1.7e10: largest before the overflow bucket
NUM_BUCKETS = (MAX_EXP - MIN_EXP) * SUBBUCKETS + 2  # + underflow + overflow

# Documented quantile error: estimates are geometric bucket midpoints, so
# vs numpy.quantile(..., method="inverted_cdf") the relative error is at
# most half a bucket's geometric width.
QUANTILE_REL_ERROR = 2.0 ** (1.0 / (2 * SUBBUCKETS)) - 1.0

enabled = False


def bucket_index(value: float) -> int:
    """The fixed-layout bucket holding ``value``.

    Bucket 0 is the underflow bucket (zero, negatives, sub-``2**MIN_EXP``);
    bucket ``NUM_BUCKETS - 1`` the overflow bucket; bucket ``i`` in between
    covers ``[2**(MIN_EXP + (i-1)/SUBBUCKETS), 2**(MIN_EXP + i/SUBBUCKETS))``.
    """
    if not value > 0.0 or value < 2.0**MIN_EXP or value != value:
        return 0
    if value >= 2.0**MAX_EXP:
        return NUM_BUCKETS - 1
    index = int((math.log2(value) - MIN_EXP) * SUBBUCKETS) + 1
    return min(max(index, 1), NUM_BUCKETS - 2)


def bucket_bounds(index: int) -> tuple[float, float]:
    """``(low, high)`` value range of one bucket (inf-edged at the ends)."""
    if index <= 0:
        return (0.0, 2.0**MIN_EXP)
    if index >= NUM_BUCKETS - 1:
        return (2.0**MAX_EXP, math.inf)
    lo = 2.0 ** (MIN_EXP + (index - 1) / SUBBUCKETS)
    hi = 2.0 ** (MIN_EXP + index / SUBBUCKETS)
    return (lo, hi)


_LAYOUT = {"subbuckets": SUBBUCKETS, "min_exp": MIN_EXP, "max_exp": MAX_EXP}


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n


class Gauge:
    """A last-write-wins sampled value."""

    __slots__ = ("name", "value", "updated")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None
        self.updated = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updated = time.time()


class Histogram:
    """Streaming distribution over the fixed log-bucket layout.

    Tracks exact ``count``/``sum``/``min``/``max`` alongside the bucket
    counts; only quantiles are approximate (within
    :data:`QUANTILE_REL_ERROR`).
    """

    __slots__ = ("name", "count", "total", "min", "max", "_buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> dict[int, int]:
        """Sparse ``{bucket_index: count}`` view (a copy)."""
        return dict(self._buckets)

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile (inverted-CDF semantics).

        Returns the geometric midpoint of the bucket containing the
        order statistic of rank ``ceil(q * count)``, clamped into the
        observed ``[min, max]`` — within :data:`QUANTILE_REL_ERROR`
        (relative) of ``numpy.quantile(data, q, method="inverted_cdf")``
        for positive in-range data.
        """
        if not self.count:
            return None
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        index = NUM_BUCKETS - 1
        for i in sorted(self._buckets):
            cumulative += self._buckets[i]
            if cumulative >= rank:
                index = i
                break
        lo, hi = bucket_bounds(index)
        if index <= 0:
            estimate = self.min if self.min < hi else hi
        elif index >= NUM_BUCKETS - 1:
            estimate = self.max if self.max > lo else lo
        else:
            estimate = math.sqrt(lo * hi)
        return min(max(estimate, self.min), self.max)

    def merge(self, other: "Histogram | dict") -> None:
        """Fold another histogram (or its snapshot) in — exactly."""
        if isinstance(other, Histogram):
            other = other.to_dict()
        layout = other.get("layout", _LAYOUT)
        if layout != _LAYOUT:
            raise ValueError(
                f"histogram {self.name!r}: incompatible bucket layout {layout}"
            )
        self.count += int(other.get("count", 0))
        self.total += float(other.get("sum", 0.0))
        self.min = min(self.min, float(other.get("min", math.inf)))
        self.max = max(self.max, float(other.get("max", -math.inf)))
        for key, value in other.get("buckets", {}).items():
            index = int(key)
            self._buckets[index] = self._buckets.get(index, 0) + int(value)

    def to_dict(self) -> dict:
        payload = {
            "count": self.count,
            "sum": self.total,
            "buckets": {str(i): c for i, c in sorted(self._buckets.items())},
            "layout": dict(_LAYOUT),
        }
        if self.count:
            payload["min"] = self.min
            payload["max"] = self.max
        return payload


def histogram_from_dict(name: str, payload: dict) -> Histogram:
    """Rebuild a :class:`Histogram` from a snapshot dict."""
    hist = Histogram(name)
    hist.merge(payload)
    return hist


def _series_key(name: str, tags: dict) -> str:
    if not tags:
        return name
    inner = ",".join(f"{k}={tags[k]}" for k in sorted(tags))
    return f"{name}{{{inner}}}"


def split_series_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of the tag folding: ``"a{x=1}"`` → ``("a", {"x": "1"})``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    tags = {}
    for part in inner[:-1].split(","):
        if "=" in part:
            tag, _, value = part.partition("=")
            tags[tag] = value
    return name, tags


class MetricsRegistry:
    """Thread-safe home of every counter/gauge/histogram in a process."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- series access ---------------------------------------------------
    def counter(self, name: str, **tags) -> Counter:
        key = _series_key(name, tags)
        with self._lock:
            series = self._counters.get(key)
            if series is None:
                series = self._counters[key] = Counter(key)
            return series

    def gauge(self, name: str, **tags) -> Gauge:
        key = _series_key(name, tags)
        with self._lock:
            series = self._gauges.get(key)
            if series is None:
                series = self._gauges[key] = Gauge(key)
            return series

    def histogram(self, name: str, **tags) -> Histogram:
        key = _series_key(name, tags)
        with self._lock:
            series = self._histograms.get(key)
            if series is None:
                series = self._histograms[key] = Histogram(key)
            return series

    # -- recording (lock-held so concurrent emitters never lose updates) --
    def inc(self, name: str, n: int | float = 1, **tags) -> None:
        key = _series_key(name, tags)
        with self._lock:
            series = self._counters.get(key)
            if series is None:
                series = self._counters[key] = Counter(key)
            series.inc(n)

    def set_gauge(self, name: str, value: float, **tags) -> None:
        key = _series_key(name, tags)
        with self._lock:
            series = self._gauges.get(key)
            if series is None:
                series = self._gauges[key] = Gauge(key)
            series.set(value)

    def observe(self, name: str, value: float, **tags) -> None:
        key = _series_key(name, tags)
        with self._lock:
            series = self._histograms.get(key)
            if series is None:
                series = self._histograms[key] = Histogram(key)
            series.observe(value)

    # -- snapshot / merge ------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe view of every series (histograms keep exact buckets)."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {
                    k: g.value
                    for k, g in sorted(self._gauges.items())
                    if g.value is not None
                },
                "histograms": {
                    k: h.to_dict() for k, h in sorted(self._histograms.items())
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold a worker's snapshot in: counters/histograms add exactly;
        gauges take the incoming (more recent) value."""
        counters = snapshot.get("counters", {})
        gauges = snapshot.get("gauges", {})
        histograms = snapshot.get("histograms", {})
        with self._lock:
            for key, value in counters.items():
                series = self._counters.get(key)
                if series is None:
                    series = self._counters[key] = Counter(key)
                series.inc(value)
            for key, value in gauges.items():
                series = self._gauges.get(key)
                if series is None:
                    series = self._gauges[key] = Gauge(key)
                series.set(value)
        # Histogram merge validates layout; do it outside the dict loop
        # but inside the lock for atomicity.
        with self._lock:
            for key, payload in histograms.items():
                series = self._histograms.get(key)
                if series is None:
                    series = self._histograms[key] = Histogram(key)
                series.merge(payload)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


# ----------------------------------------------------------------------
# process-wide default registry + cheap-guard helpers
# ----------------------------------------------------------------------
_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _registry


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the default registry; returns the previous one."""
    global _registry
    previous, _registry = _registry, registry
    return previous


def enable_metrics() -> None:
    global enabled
    enabled = True


def disable_metrics() -> None:
    global enabled
    enabled = False


def metrics_enabled() -> bool:
    return enabled


def reset_metrics() -> None:
    _registry.reset()


def inc(name: str, n: int | float = 1, **tags) -> None:
    """Bump a counter on the default registry (no-op while disabled)."""
    if not enabled:
        return
    _registry.inc(name, n, **tags)


def set_gauge(name: str, value: float, **tags) -> None:
    """Set a gauge on the default registry (no-op while disabled)."""
    if not enabled:
        return
    _registry.set_gauge(name, value, **tags)


def observe(name: str, value: float, **tags) -> None:
    """Observe a histogram sample on the default registry (no-op while
    disabled)."""
    if not enabled:
        return
    _registry.observe(name, value, **tags)


class collecting_metrics:
    """Enable metrics for a block and hand back a fresh registry.

    >>> with collecting_metrics() as registry:
    ...     run_sweep(...)
    >>> registry.histogram("sweep.cell_seconds").quantile(0.95)
    """

    def __init__(self, reset: bool = True):
        self._reset = reset

    def __enter__(self) -> MetricsRegistry:
        if self._reset:
            reset_metrics()
        self._was_enabled = enabled
        enable_metrics()
        return _registry

    def __exit__(self, *exc) -> None:
        if not self._was_enabled:
            disable_metrics()


# ----------------------------------------------------------------------
# snapshots to the event log (time series) and Prometheus exposition
# ----------------------------------------------------------------------
def emit_snapshot(log=None, **payload) -> dict | None:
    """Emit one ``metrics`` event carrying the registry snapshot.

    The trainer calls this per epoch and sweeps per cell, turning the
    registry into a JSONL time series alongside the other run events.
    Returns the record, or None when metrics or the log are disabled.
    """
    if not enabled:
        return None
    from repro.obs import events as obs_events

    log = log or obs_events.get_event_log()
    if not log.enabled:
        return None
    return log.emit(obs_events.METRICS, metrics=_registry.snapshot(), **payload)


_DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def snapshot_quantiles(
    histogram_payload: dict, quantiles: tuple[float, ...] = _DEFAULT_QUANTILES
) -> dict[str, float]:
    """p50/p95/p99 (by default) of one snapshot histogram payload."""
    hist = histogram_from_dict("snapshot", histogram_payload)
    out = {}
    for q in quantiles:
        value = hist.quantile(q)
        if value is not None:
            out[f"p{int(round(q * 100))}"] = value
    return out


def _prometheus_name(key: str) -> tuple[str, str]:
    """Sanitized metric name and a ``{label="v"}`` suffix for one series key."""
    name, tags = split_series_key(key)
    clean = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not tags:
        return clean, ""
    labels = ",".join(f'{k}="{v}"' for k, v in sorted(tags.items()))
    return clean, "{" + labels + "}"


def to_prometheus(registry: MetricsRegistry | None = None, prefix: str = "repro_") -> str:
    """Render a registry in the Prometheus text exposition format.

    Histograms export cumulative ``_bucket{le=...}`` series over the
    fixed layout (only populated edges plus ``+Inf``), with ``_sum`` and
    ``_count`` — the format the future ``repro.serve`` scrape endpoint
    returns.
    """
    registry = registry or _registry
    snapshot = registry.snapshot()
    lines: list[str] = []
    seen_types: set[str] = set()

    def typeline(metric: str, kind: str) -> None:
        if metric not in seen_types:
            seen_types.add(metric)
            lines.append(f"# TYPE {metric} {kind}")

    for key, value in snapshot["counters"].items():
        name, labels = _prometheus_name(key)
        metric = f"{prefix}{name}_total"
        typeline(metric, "counter")
        lines.append(f"{metric}{labels} {value}")
    for key, value in snapshot["gauges"].items():
        name, labels = _prometheus_name(key)
        metric = f"{prefix}{name}"
        typeline(metric, "gauge")
        lines.append(f"{metric}{labels} {value}")
    for key, payload in snapshot["histograms"].items():
        name, labels = _prometheus_name(key)
        metric = f"{prefix}{name}"
        typeline(metric, "histogram")
        inner = labels[1:-1] if labels else ""
        cumulative = 0
        for index in sorted(int(i) for i in payload.get("buckets", {})):
            cumulative += int(payload["buckets"][str(index)])
            le = bucket_bounds(index)[1]
            if math.isinf(le):
                continue  # folded into the final +Inf bucket below
            label = f'le="{le!r}"' + (f",{inner}" if inner else "")
            lines.append(f"{metric}_bucket{{{label}}} {cumulative}")
        label = 'le="+Inf"' + (f",{inner}" if inner else "")
        lines.append(f"{metric}_bucket{{{label}}} {payload.get('count', 0)}")
        lines.append(f"{metric}_sum{labels} {payload.get('sum', 0.0)}")
        lines.append(f"{metric}_count{labels} {payload.get('count', 0)}")
    return "\n".join(lines) + "\n"
