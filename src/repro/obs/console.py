"""Leveled console output and a human-readable event sink.

The CLI (and any script) talks to the user through one :class:`Console`
with stdlib-style levels plus one extra: **result**. Result lines are the
machine-consumable outputs of a command (final accuracies, saved paths,
tables) and always go to stdout so piping keeps working; ``--quiet``
raises the threshold so progress chatter disappears but results do not.

:class:`ConsoleSink` adapts an :class:`~repro.obs.events.EventLog` to the
console, rendering each structured record as one readable line — the
"human sink" counterpart of the JSONL sink.
"""

from __future__ import annotations

import sys
from typing import TextIO

from repro.obs import events as ev


class Console:
    """Leveled writer: debug/info/warning/error plus always-on results."""

    def __init__(
        self,
        level: int = ev.INFO,
        stream: TextIO | None = None,
        err_stream: TextIO | None = None,
    ):
        self.level = level
        self._stream = stream
        self._err_stream = err_stream

    # streams resolve lazily so pytest's capsys redirection is honoured
    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stdout

    @property
    def err_stream(self) -> TextIO:
        return self._err_stream if self._err_stream is not None else sys.stderr

    def log(self, level: int, message: str) -> None:
        if level < self.level:
            return
        target = self.err_stream if level >= ev.WARNING else self.stream
        print(message, file=target)

    def debug(self, message: str) -> None:
        self.log(ev.DEBUG, message)

    def info(self, message: str) -> None:
        self.log(ev.INFO, message)

    def warning(self, message: str) -> None:
        self.log(ev.WARNING, f"warning: {message}")

    def error(self, message: str) -> None:
        self.log(ev.ERROR, f"error: {message}")

    def result(self, message: str) -> None:
        """Final output of a command — printed to stdout at every level."""
        print(message, file=self.stream)


_global_console = Console()


def get_console() -> Console:
    """The process-wide console used by the CLI and examples."""
    return _global_console


def set_verbosity(level: int) -> None:
    """Set the default console's threshold (e.g. ``events.WARNING`` for
    ``--quiet``, ``events.DEBUG`` for ``--verbose``)."""
    _global_console.level = level


class ConsoleSink(ev.Sink):
    """Render structured events as human-readable console lines."""

    def __init__(self, console: Console | None = None, level: int = ev.DEBUG):
        self.console = console or get_console()
        self.level = level

    def emit(self, record: dict) -> None:
        self.console.log(self.level, format_event(record))


def format_event(record: dict) -> str:
    """One-line human rendering of an event record."""
    t = record.get("t", 0.0)
    prefix = f"[{t:9.3f}s]"
    kind = record.get("type", "?")
    if kind == ev.EPOCH:
        parts = [f"epoch {record.get('epoch', '?')}/{record.get('epochs', '?')}"]
        if "loss" in record:
            parts.append(f"loss={record['loss']:.4f}")
        if record.get("accuracy") is not None:
            parts.append(f"acc={record['accuracy']:.4f}")
        if "lr" in record:
            parts.append(f"lr={record['lr']:.2e}")
        if "epoch_time" in record:
            parts.append(f"{record['epoch_time']:.2f}s")
        return f"{prefix} {'  '.join(parts)}"
    if kind == ev.STAGE:
        extra = ""
        if record.get("phase") == "end":
            bits = []
            if record.get("accuracy_after") is not None:
                bits.append(f"acc={record['accuracy_after']:.4f}")
            if "duration" in record:
                bits.append(f"{record['duration']:.2f}s")
            if bits:
                extra = f" ({', '.join(bits)})"
        return f"{prefix} stage {record.get('name', '?')} {record.get('phase', '?')}{extra}"
    if kind == ev.EVAL:
        return f"{prefix} eval {record.get('name', '?')}: accuracy={record.get('accuracy', float('nan')):.4f}"
    if kind == ev.RUN_START:
        return f"{prefix} run {record.get('run', '?')} start: {record.get('command', '')}"
    if kind == ev.RUN_END:
        return f"{prefix} run end: status={record.get('status', '?')}"
    keys = sorted(set(record) - {"type", "run", "seq", "t", "level"})
    body = " ".join(f"{k}={record[k]!r}" for k in keys)
    return f"{prefix} {kind} {body}".rstrip()
