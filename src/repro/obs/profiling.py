"""Low-overhead profiling: named timers and counters on the hot paths.

The approximate-GEMM engine, im2col, fake quantization and Monte-Carlo
profiling are instrumented with :func:`timer` blocks and :func:`count`
calls. Profiling is **off by default**: a disabled timer costs one module
attribute read and a branch, so instrumentation can live permanently in
the hot paths. Enable it around a region of interest::

    with profiled() as report:
        run_sweep(...)
    print(report.to_table())

Aggregation is by name: every ``timer("approx.matmul")`` block adds to the
same :class:`TimerStat` regardless of call site. Timers nest naturally —
each block measures its own wall time, so a parent's total includes its
children's (the table is a flat inclusive-time profile, not a call tree).
``self_time`` subtracts directly-nested child time for the common
one-level case.

Counters saturate at ``2**63 - 1`` instead of growing unbounded so the
JSONL records they feed stay representable as int64 downstream.

The registry is **thread-safe** (``docs/PERFORMANCE.md``): the timer stack
lives in thread-local storage so nesting is attributed per thread, and all
registry mutation happens under one lock. Worker processes profile into
their own registries and ship a :class:`ProfileReport` snapshot back to
the parent, which folds it in with :func:`merge_report`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.obs import trace as _trace

# int64 saturation bound for counters and byte tallies.
COUNTER_MAX = 2**63 - 1

enabled = False


@dataclass
class TimerStat:
    """Aggregated statistics of one named timer or counter."""

    name: str
    calls: int = 0
    total: float = 0.0  # inclusive wall seconds (0 for pure counters)
    self_time: float = 0.0  # total minus directly-nested timer time
    bytes: int = 0

    def add(self, elapsed: float, nbytes: int, child_time: float) -> None:
        self.calls = min(self.calls + 1, COUNTER_MAX)
        self.total += elapsed
        self.self_time += max(elapsed - child_time, 0.0)
        self.bytes = min(self.bytes + int(nbytes), COUNTER_MAX)


_timers: dict[str, TimerStat] = {}
_counters: dict[str, TimerStat] = {}
_lock = threading.Lock()  # guards _timers/_counters mutation and snapshots
_local = threading.local()  # per-thread stack of child-time accumulators


def _stack() -> list[list[float]]:
    """This thread's stack of per-active-timer child-time accumulators."""
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def enable_profiling() -> None:
    global enabled
    enabled = True


def disable_profiling() -> None:
    global enabled
    enabled = False


def reset_profiling() -> None:
    """Drop all aggregated timer and counter state.

    Only the calling thread's timer stack is cleared (the others live in
    their threads' local storage); a timer block that is still open when
    the reset happens simply discards its sample on exit instead of
    polluting the fresh registry.
    """
    with _lock:
        _timers.clear()
        _counters.clear()
    _stack().clear()


class timer:
    """Context manager timing a named block (no-op while disabled).

    ``nbytes`` attributes a payload size to the block, so the profile can
    report throughput alongside wall time.
    """

    __slots__ = ("name", "nbytes", "_start", "_children", "_active", "_span")

    def __init__(self, name: str, nbytes: int = 0):
        self.name = name
        self.nbytes = nbytes

    def __enter__(self) -> "timer":
        # Bridge to repro.obs.trace: while tracing is enabled, every timer
        # block also opens a matching span, so the hot paths show up in
        # Chrome-trace timelines without double instrumentation.
        if _trace.enabled:
            self._span = _trace.span(self.name)
            self._span.__enter__()
        else:
            self._span = None
        self._active = enabled
        if self._active:
            self._children = [0.0]
            _stack().append(self._children)
            self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._span is not None:
            self._span.__exit__(*exc)
        if not self._active:
            return
        elapsed = time.perf_counter() - self._start
        stack = _stack()
        if not stack or stack[-1] is not self._children:
            # reset_profiling() ran inside this block and cleared the
            # stack; the sample belongs to the discarded epoch, drop it.
            return
        stack.pop()
        with _lock:
            stat = _timers.get(self.name)
            if stat is None:
                stat = _timers[self.name] = TimerStat(self.name)
            stat.add(elapsed, self.nbytes, self._children[0])
        if stack:
            stack[-1][0] += elapsed


def count(name: str, n: int = 1, nbytes: int = 0) -> None:
    """Bump a named counter (no-op while disabled)."""
    if not enabled:
        return
    with _lock:
        stat = _counters.get(name)
        if stat is None:
            stat = _counters[name] = TimerStat(name)
        stat.calls = min(stat.calls + int(n), COUNTER_MAX)
        stat.bytes = min(stat.bytes + int(nbytes), COUNTER_MAX)


@dataclass
class ProfileReport:
    """Snapshot of all timers and counters, renderable as a table."""

    timers: list[TimerStat] = field(default_factory=list)
    counters: list[TimerStat] = field(default_factory=list)

    def top(self, n: int = 10) -> list[TimerStat]:
        """The ``n`` hottest timers by inclusive wall time."""
        return sorted(self.timers, key=lambda s: s.total, reverse=True)[:n]

    def timer(self, name: str) -> TimerStat | None:
        for stat in self.timers:
            if stat.name == name:
                return stat
        return None

    def counter(self, name: str) -> TimerStat | None:
        for stat in self.counters:
            if stat.name == name:
                return stat
        return None

    def to_dict(self) -> dict:
        """JSON-ready payload for a ``profile`` event."""
        def row(s: TimerStat) -> dict:
            return {
                "name": s.name,
                "calls": s.calls,
                "total": round(s.total, 6),
                "self": round(s.self_time, 6),
                "bytes": s.bytes,
            }

        return {
            "timers": [row(s) for s in self.top(len(self.timers))],
            "counters": [row(s) for s in sorted(self.counters, key=lambda s: s.name)],
        }

    def to_table(self, top: int = 10) -> str:
        """Fixed-width text table of the hottest timers plus all counters."""
        lines = [
            f"{'timer':32s} {'calls':>9s} {'total[s]':>10s} {'self[s]':>10s} {'MB':>9s}"
        ]
        for s in self.top(top):
            lines.append(
                f"{s.name:32s} {s.calls:9d} {s.total:10.4f} "
                f"{s.self_time:10.4f} {s.bytes / 1e6:9.2f}"
            )
        if self.counters:
            lines.append(f"{'counter':32s} {'count':>9s} {'MB':>32s}")
            for s in sorted(self.counters, key=lambda c: c.name):
                lines.append(f"{s.name:32s} {s.calls:9d} {s.bytes / 1e6:32.2f}")
        return "\n".join(lines)


def profile_report() -> ProfileReport:
    """Snapshot the current registries into a :class:`ProfileReport`."""
    from copy import copy

    with _lock:
        return ProfileReport(
            timers=[copy(s) for s in _timers.values()],
            counters=[copy(s) for s in _counters.values()],
        )


def merge_report(report: ProfileReport) -> None:
    """Fold a worker's :class:`ProfileReport` snapshot into the registries.

    Used by :mod:`repro.parallel` to merge profiling captured inside worker
    processes back into the parent, so ``profiled()`` around a parallel
    region reports the whole fleet's hot paths. Same-named stats aggregate
    exactly like same-named timer blocks would.
    """
    with _lock:
        for stats, registry in ((report.timers, _timers), (report.counters, _counters)):
            for src in stats:
                dst = registry.get(src.name)
                if dst is None:
                    dst = registry[src.name] = TimerStat(src.name)
                dst.calls = min(dst.calls + src.calls, COUNTER_MAX)
                dst.total += src.total
                dst.self_time += src.self_time
                dst.bytes = min(dst.bytes + src.bytes, COUNTER_MAX)


class profiled:
    """Enable profiling for a block and hand back its report.

    >>> with profiled() as report:
    ...     approx_matmul(a, b, mult)
    >>> report.to_table()

    The report object is filled at exit; it also works as a fresh-slate
    wrapper (the registries are reset on entry).
    """

    def __init__(self, reset: bool = True):
        self._reset = reset
        self._was_enabled = False

    def __enter__(self) -> ProfileReport:
        if self._reset:
            reset_profiling()
        self._was_enabled = enabled
        enable_profiling()
        self._report = ProfileReport()
        return self._report

    def __exit__(self, *exc) -> None:
        if not self._was_enabled:
            disable_profiling()
        snapshot = profile_report()
        self._report.timers = snapshot.timers
        self._report.counters = snapshot.counters
