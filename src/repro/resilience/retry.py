"""Fault isolation for independent units of work (e.g. sweep cells).

A sweep over dozens of multipliers must not die because one cell raises —
the grid should complete and the failure should become *data*. This
module provides the boundary: :func:`call_with_retry` runs a callable up
to ``1 + retries`` times and, instead of propagating, returns a structured
:class:`FailureRecord` (error type, message, traceback, attempt count)
when every attempt failed. ``KeyboardInterrupt``/``SystemExit`` always
propagate — interrupting a sweep must still interrupt it.

Every failed attempt emits a ``fault`` event on the active event log.
"""

from __future__ import annotations

import traceback as _traceback
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.obs import events as obs_events

T = TypeVar("T")

_TRACEBACK_LIMIT = 4000  # characters kept per recorded traceback


@dataclass(frozen=True)
class FailureRecord:
    """Structured description of an exhausted unit of work."""

    where: str
    error_type: str
    error: str
    traceback: str
    attempts: int


def call_with_retry(
    fn: Callable[[], T],
    where: str,
    retries: int = 0,
) -> tuple[T | None, FailureRecord | None]:
    """Run ``fn`` with up to ``retries`` retries; never raises on failure.

    Returns ``(result, None)`` on success and ``(None, FailureRecord)``
    when every attempt raised. The record carries the *last* attempt's
    error and the total attempt count.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    log = obs_events.get_event_log()
    last: FailureRecord | None = None
    attempts = retries + 1
    for attempt in range(1, attempts + 1):
        try:
            return fn(), None
        except Exception as exc:  # noqa: BLE001 — the boundary is the point
            last = FailureRecord(
                where=where,
                error_type=type(exc).__name__,
                error=str(exc),
                traceback=_traceback.format_exc()[-_TRACEBACK_LIMIT:],
                attempts=attempt,
            )
            if log.enabled:
                log.fault(
                    where,
                    last.error_type,
                    error=last.error,
                    attempt=attempt,
                    attempts=attempts,
                )
    return None, last
