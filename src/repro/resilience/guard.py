"""Divergence guard: detect blow-ups, roll back, retry with a smaller LR.

Approximate retraining is where runs blow up: AM-induced error makes
losses spike and gradients explode (the reason the gradient-estimation
line of work exists at all). The guard watches three signals —

- **non-finite loss** per batch, checked *before* the backward/step so a
  NaN never reaches the weights,
- **exploding gradient norm** per batch, checked after the backward but
  before the step,
- **accuracy collapse** per evaluated epoch (absolute floor and/or drop
  from the best seen),

and on a trip restores the model, optimizer and RNG to the snapshot taken
at the start of the epoch, shrinks its learning-rate scale by
``lr_backoff``, and lets the trainer retry the epoch. Retries are bounded
per epoch; when the budget is spent the trainer raises
:class:`repro.errors.DivergenceError`. Every rollback and give-up emits a
``guard`` event on the active :class:`repro.obs.EventLog`.

The LR scale persists for the rest of the run (and across resume — the
trainer checkpoints it), so a run that needed backing off does not
immediately re-diverge at the next epoch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Module
from repro.obs import events as obs_events
from repro.train.optim import Optimizer
from repro.utils.rng import get_rng_state, set_rng_state


@dataclass(frozen=True)
class GuardConfig:
    """Thresholds and retry policy of a :class:`DivergenceGuard`."""

    max_retries: int = 3
    lr_backoff: float = 0.5
    min_lr_scale: float = 1e-4
    max_grad_norm: float | None = 1e3
    min_accuracy: float | None = None
    max_accuracy_drop: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if not 0.0 < self.lr_backoff < 1.0:
            raise ConfigError(f"lr_backoff must be in (0, 1), got {self.lr_backoff}")
        if self.min_lr_scale <= 0:
            raise ConfigError(f"min_lr_scale must be > 0, got {self.min_lr_scale}")
        if self.max_grad_norm is not None and self.max_grad_norm <= 0:
            raise ConfigError(f"max_grad_norm must be > 0, got {self.max_grad_norm}")
        if self.max_accuracy_drop is not None and self.max_accuracy_drop <= 0:
            raise ConfigError(
                f"max_accuracy_drop must be > 0, got {self.max_accuracy_drop}"
            )


@dataclass(frozen=True)
class GuardTrip:
    """Record of one rollback (or final give-up)."""

    epoch: int
    reason: str
    detail: str
    attempt: int
    lr_scale: float
    retrying: bool


@dataclass
class _Snapshot:
    epoch: int
    model_state: dict
    optimizer_state: dict
    rng_state: dict


class DivergenceGuard:
    """Stateful watchdog used by :func:`repro.train.train_model`.

    The trainer drives the protocol:

    1. :meth:`remember` at the start of every epoch (snapshot),
    2. :meth:`check_loss` / :meth:`check_grad_norm` per batch and
       :meth:`check_accuracy` after the evaluation — a non-None return is
       the trip reason,
    3. :meth:`trip` to roll back; its return says whether to retry,
    4. :meth:`record_accuracy` once an epoch is accepted.
    """

    def __init__(self, config: GuardConfig | None = None):
        self.config = config or GuardConfig()
        self.lr_scale: float = 1.0
        self.trips: list[GuardTrip] = []
        self._snapshot: _Snapshot | None = None
        self._attempts = 0
        self._best_accuracy = -math.inf

    # -- snapshotting ----------------------------------------------------
    def remember(
        self, epoch: int, model: Module, optimizer: Optimizer, rng: np.random.Generator
    ) -> None:
        """Snapshot the run state at the start of ``epoch``."""
        if self._snapshot is None or self._snapshot.epoch != epoch:
            self._attempts = 0
        self._snapshot = _Snapshot(
            epoch=epoch,
            model_state=model.state_dict(),
            optimizer_state=optimizer.state_dict(),
            rng_state=get_rng_state(rng),
        )

    # -- detection -------------------------------------------------------
    def check_loss(self, loss_value: float) -> str | None:
        if not math.isfinite(loss_value):
            return "non_finite_loss"
        return None

    def check_grad_norm(self, grad_norm: float) -> str | None:
        if self.config.max_grad_norm is None:
            return None
        if not math.isfinite(grad_norm) or grad_norm > self.config.max_grad_norm:
            return "grad_explosion"
        return None

    def check_accuracy(self, accuracy: float) -> str | None:
        if not math.isfinite(accuracy):
            return "non_finite_accuracy"
        if self.config.min_accuracy is not None and accuracy < self.config.min_accuracy:
            return "accuracy_floor"
        if (
            self.config.max_accuracy_drop is not None
            and self._best_accuracy > -math.inf
            and accuracy < self._best_accuracy - self.config.max_accuracy_drop
        ):
            return "accuracy_collapse"
        return None

    def record_accuracy(self, accuracy: float) -> None:
        """Track the best accepted accuracy (collapse baseline)."""
        if accuracy > self._best_accuracy:
            self._best_accuracy = accuracy

    # -- rollback --------------------------------------------------------
    @property
    def attempts(self) -> int:
        """Rollbacks of the epoch currently being retried."""
        return self._attempts

    def trip(
        self,
        epoch: int,
        reason: str,
        detail: str,
        model: Module,
        optimizer: Optimizer,
        rng: np.random.Generator,
    ) -> bool:
        """Roll back to the epoch-start snapshot; True when a retry is due.

        Each trip multiplies the guard's LR scale by ``lr_backoff``
        (exponential backoff). Retries stop when the per-epoch budget is
        spent or the scale falls below ``min_lr_scale``.
        """
        if self._snapshot is None or self._snapshot.epoch != epoch:
            raise ConfigError(
                f"guard tripped at epoch {epoch} without a matching snapshot"
            )
        self._attempts += 1
        model.load_state_dict(self._snapshot.model_state)
        optimizer.load_state_dict(self._snapshot.optimizer_state)
        set_rng_state(rng, self._snapshot.rng_state)

        new_scale = self.lr_scale * self.config.lr_backoff
        retrying = (
            self._attempts <= self.config.max_retries
            and new_scale >= self.config.min_lr_scale
        )
        if retrying:
            self.lr_scale = new_scale
        record = GuardTrip(
            epoch=epoch,
            reason=reason,
            detail=detail,
            attempt=self._attempts,
            lr_scale=self.lr_scale,
            retrying=retrying,
        )
        self.trips.append(record)
        log = obs_events.get_event_log()
        if log.enabled:
            log.guard(
                "rollback" if retrying else "giveup",
                reason=reason,
                epoch=epoch + 1,
                attempt=self._attempts,
                lr_scale=self.lr_scale,
                detail=detail,
            )
        return retrying
