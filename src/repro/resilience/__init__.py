"""Resilience subsystem: crash-safe checkpoints, divergence guards, fault
isolation.

The paper's protocol is a long multi-stage pipeline (FP teacher → 8A4W
student → approximate student → multiplier × method × temperature sweep);
this package makes every stage of it survivable:

- :class:`CheckpointManager` — atomic, SHA-256-checksummed training
  checkpoints (model + optimizer + RNG + history) with a retention
  policy; ``train_model(..., checkpoints=..., resume=True)`` continues a
  killed run bit-for-bit.
- :class:`DivergenceGuard` — detects NaN/Inf losses, exploding gradient
  norms and accuracy collapse, rolls the run back to the last epoch
  snapshot and retries with an exponentially reduced learning rate.
- :func:`call_with_retry` — the per-cell fault boundary used by
  :func:`repro.pipeline.run_sweep` so one bad multiplier becomes a
  recorded failure instead of a dead grid.

Atomic file primitives live in :mod:`repro.utils.atomic` (re-exported
here) so lower layers can use them without import cycles. See
``docs/RESILIENCE.md`` for formats and semantics.
"""

from repro.resilience.checkpoint import FORMAT_VERSION, Checkpoint, CheckpointManager
from repro.resilience.guard import DivergenceGuard, GuardConfig, GuardTrip
from repro.resilience.retry import FailureRecord, call_with_retry
from repro.utils.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    atomic_writer,
    file_sha256,
)

__all__ = [
    "FORMAT_VERSION",
    "Checkpoint",
    "CheckpointManager",
    "DivergenceGuard",
    "GuardConfig",
    "GuardTrip",
    "FailureRecord",
    "call_with_retry",
    "atomic_writer",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "file_sha256",
]
