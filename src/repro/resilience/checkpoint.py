"""Crash-safe, checksummed training checkpoints.

A checkpoint is one ``.npz`` archive holding the complete state needed to
continue a run bit-for-bit where it stopped:

- the model arrays of :func:`repro.utils.serialization.model_state_arrays`
  (parameters, buffers and quantization step sizes/bit widths),
- the optimizer state (momentum/Adam buffers) under ``__opt__/`` keys,
- a JSON payload under ``__resilience__/state`` with the epoch count, RNG
  state, training history and any caller extras (e.g. the divergence
  guard's LR scale).

Next to each archive sits a small JSON manifest with the archive's SHA-256
digest. Both files are written atomically (temp file + ``os.replace``), so
a SIGKILL at any instant leaves either a complete epoch-N checkpoint or a
complete epoch-(N-1) one — never a torn file that silently resumes wrong.
:meth:`CheckpointManager.load_latest` verifies the digest and falls back to
the newest earlier checkpoint when one is corrupt.
"""

from __future__ import annotations

import json
import re
import time
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import CheckpointError
from repro.nn.module import Module
from repro.obs import events as obs_events
from repro.obs import metrics as met
from repro.obs import trace as tr
from repro.train.optim import Optimizer
from repro.utils.atomic import atomic_write_json, atomic_writer, file_sha256
from repro.utils.serialization import load_model_arrays, model_state_arrays

FORMAT_VERSION = 1

_OPT_PREFIX = "__opt__/"
_STATE_KEY = "__resilience__/state"
_NAME_RE = re.compile(r"^epoch-(\d{6})\.ckpt\.npz$")


@dataclass(frozen=True)
class Checkpoint:
    """A loaded checkpoint: where it came from and its JSON payload."""

    path: Path
    epoch: int
    state: dict


class CheckpointManager:
    """Manage the checkpoints of one training run in one directory.

    ``keep`` bounds disk use (older checkpoints are pruned after each
    save); ``every`` sets the epoch cadence the trainer saves at. The
    manager is deliberately model-agnostic: it persists whatever arrays
    the model/optimizer expose, so it works for FP training, the
    quantization stage and approximate retraining alike.
    """

    def __init__(self, directory: str | Path, keep: int = 3, every: int = 1):
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {keep}")
        if every < 1:
            raise CheckpointError(f"every must be >= 1, got {every}")
        self.directory = Path(directory)
        self.keep = int(keep)
        self.every = int(every)

    # -- paths -----------------------------------------------------------
    def path_for(self, epoch: int) -> Path:
        return self.directory / f"epoch-{epoch:06d}.ckpt.npz"

    @staticmethod
    def manifest_for(path: Path) -> Path:
        return path.with_suffix(".json")  # epoch-NNNNNN.ckpt.json

    def checkpoints(self) -> list[tuple[int, Path]]:
        """All on-disk checkpoint archives, oldest first (unverified)."""
        if not self.directory.is_dir():
            return []
        found = []
        for path in self.directory.iterdir():
            match = _NAME_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found)

    # -- save ------------------------------------------------------------
    def save(
        self,
        epoch: int,
        model: Module,
        optimizer: Optimizer | None = None,
        state: dict | None = None,
    ) -> Path:
        """Write the epoch-``epoch`` checkpoint atomically and prune."""
        arrays = model_state_arrays(model)
        payload = {"format": FORMAT_VERSION, "epoch": int(epoch)}
        if state:
            payload.update(state)
        if optimizer is not None:
            opt_arrays, opt_scalars = _flatten_optimizer_state(optimizer.state_dict())
            arrays.update(opt_arrays)
            payload["optimizer"] = opt_scalars
        arrays[_STATE_KEY] = np.frombuffer(
            json.dumps(payload, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )

        path = self.path_for(epoch)
        write_started = time.perf_counter()
        with tr.span("checkpoint.save", epoch=int(epoch)):
            with atomic_writer(path, "wb") as stream:
                np.savez(stream, **arrays)
            atomic_write_json(
                self.manifest_for(path),
                {
                    "file": path.name,
                    "sha256": file_sha256(path),
                    "epoch": int(epoch),
                    "format": FORMAT_VERSION,
                },
            )
        if met.enabled:
            met.observe("checkpoint.save_seconds", time.perf_counter() - write_started)
        log = obs_events.get_event_log()
        if log.enabled:
            log.checkpoint("save", epoch=int(epoch), path=str(path))
        self.prune()
        return path

    # -- load ------------------------------------------------------------
    def verify(self, path: Path) -> bool:
        """True when ``path`` exists and matches its manifest's digest."""
        manifest_path = self.manifest_for(path)
        if not path.exists() or not manifest_path.exists():
            return False
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError:
            return False
        return manifest.get("sha256") == file_sha256(path)

    def load(
        self,
        path: str | Path,
        model: Module,
        optimizer: Optimizer | None = None,
    ) -> Checkpoint:
        """Load one verified checkpoint into ``model`` (and ``optimizer``)."""
        path = Path(path)
        if not self.verify(path):
            raise CheckpointError(
                f"checkpoint failed verification (missing or corrupt): {path}"
            )
        try:
            with np.load(path) as archive:
                arrays = {key: archive[key] for key in archive.files}
        except (zipfile.BadZipFile, ValueError, OSError, EOFError, KeyError) as exc:
            raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
        if _STATE_KEY not in arrays:
            raise CheckpointError(f"checkpoint {path} has no resilience state")
        payload = json.loads(bytes(arrays.pop(_STATE_KEY)).decode("utf-8"))
        if payload.get("format") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has unsupported format {payload.get('format')!r}"
            )
        opt_arrays = {
            key.removeprefix(_OPT_PREFIX): value
            for key, value in arrays.items()
            if key.startswith(_OPT_PREFIX)
        }
        model_arrays = {
            key: value for key, value in arrays.items() if not key.startswith(_OPT_PREFIX)
        }
        load_model_arrays(model, model_arrays, context=f"checkpoint {path}")
        if optimizer is not None:
            scalars = payload.get("optimizer")
            if scalars is None:
                raise CheckpointError(
                    f"checkpoint {path} has no optimizer state but an optimizer "
                    f"was passed to restore"
                )
            optimizer.load_state_dict(_unflatten_optimizer_state(opt_arrays, scalars))
        return Checkpoint(path=path, epoch=int(payload["epoch"]), state=payload)

    def load_latest(
        self,
        model: Module,
        optimizer: Optimizer | None = None,
    ) -> Checkpoint | None:
        """Load the newest checkpoint that verifies; None when none does.

        Corrupt or unreadable checkpoints are skipped (newest first) with a
        ``checkpoint``/``corrupt`` event, so a crash during the final save
        degrades to resuming one epoch earlier instead of failing the run.
        """
        log = obs_events.get_event_log()
        for _, path in reversed(self.checkpoints()):
            try:
                return self.load(path, model, optimizer)
            except CheckpointError as exc:
                if log.enabled:
                    log.checkpoint("corrupt", path=str(path), error=str(exc))
        return None

    # -- retention -------------------------------------------------------
    def prune(self) -> list[Path]:
        """Delete all but the newest ``keep`` checkpoints; returns removals."""
        removed = []
        stale = self.checkpoints()[: -self.keep] if self.keep else []
        for _, path in stale:
            path.unlink(missing_ok=True)
            self.manifest_for(path).unlink(missing_ok=True)
            removed.append(path)
        log = obs_events.get_event_log()
        if removed and log.enabled:
            log.checkpoint("prune", removed=[str(p) for p in removed])
        return removed


def _flatten_optimizer_state(state: dict) -> tuple[dict[str, np.ndarray], dict]:
    """Split an optimizer state dict into npz arrays and JSON scalars."""
    arrays: dict[str, np.ndarray] = {}
    scalars: dict = {}
    for key, value in state.items():
        if isinstance(value, list) and all(isinstance(v, np.ndarray) for v in value):
            for i, buf in enumerate(value):
                arrays[f"{_OPT_PREFIX}{key}/{i:04d}"] = buf
            scalars[key] = {"__buffers__": len(value)}
        elif isinstance(value, (int, float)):
            scalars[key] = value
        else:
            raise CheckpointError(
                f"cannot checkpoint optimizer state {key!r} of type "
                f"{type(value).__name__}"
            )
    return arrays, scalars


def _unflatten_optimizer_state(arrays: dict[str, np.ndarray], scalars: dict) -> dict:
    """Inverse of :func:`_flatten_optimizer_state`."""
    state: dict = {}
    for key, value in scalars.items():
        if isinstance(value, dict) and "__buffers__" in value:
            count = int(value["__buffers__"])
            try:
                state[key] = [arrays[f"{key}/{i:04d}"] for i in range(count)]
            except KeyError as exc:
                raise CheckpointError(
                    f"optimizer buffer list {key!r} is incomplete: missing {exc}"
                ) from exc
        else:
            state[key] = value
    return state
