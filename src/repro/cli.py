"""Command-line interface for the reproduction pipeline.

Subcommands mirror the stages of Algorithm 1 plus inspection utilities:

- ``repro train``        — train a full-precision model on synthetic data.
- ``repro quantize``     — 8A4W quantization stage (optionally with KD).
- ``repro approximate``  — approximation stage with any fine-tuning method.
- ``repro evaluate``     — accuracy of a checkpoint, optionally under an
  approximate multiplier.
- ``repro multipliers``  — list available multipliers with MRE and savings.
- ``repro profile``      — error model of one multiplier (closed-form
  analytic by default, Monte-Carlo via ``--error-model-method``).
- ``repro zoo``          — rank the whole multiplier registry by analytic
  error statistics in milliseconds (table or ``--json``).
- ``repro serve``        — micro-batched inference serving of a checkpoint
  (``docs/SERVING.md``): a built-in load run by default, or an HTTP
  front end with ``--port``.
- ``repro report``       — summarise a JSONL run log written by ``--log-json``
  (``--format json`` emits the full machine-readable RunSummary).
- ``repro trace``        — self-time flame summary of a Chrome trace
  written by ``--trace``.

Every subcommand supports the observability flags (``docs/OBSERVABILITY.md``):
``--log-json PATH`` streams structured events to a JSONL file
(``--log-rotate-mb MB`` rotates it into numbered segments), ``--metrics``
collects streaming counters/gauges/latency histograms and snapshots them
into the log, ``--trace PATH`` records hierarchical spans — including
spans merged back from worker processes — and exports a Chrome
``trace_event`` JSON, ``--quiet`` suppresses progress chatter (final
result lines stay on stdout for scripting), ``--verbose`` renders the
event stream on the console, and ``--profile`` prints the hot-path timer
table after the command.

The compute-heavy subcommands (``sweep``/``profile``/``approximate``/
``evaluate``) additionally take ``--workers N`` (``docs/PERFORMANCE.md``):
sweep cells and Monte-Carlo simulations spread over a worker pool and
large approximate GEMMs run row-chunked on threads, with results
identical to the serial ones on a fixed seed. They also accept
``--gemm-backend NAME`` to pick the GEMM execution backend
(``repro.approx.backend``; also via ``REPRO_GEMM_BACKEND``) — backend
choice changes speed only, never results — and
``--error-model-method {auto,analytic,montecarlo}`` to pick the error
model estimator (``repro.ge.estimator``; also via
``REPRO_ERROR_MODEL_METHOD``).

The training subcommands (``train``/``quantize``/``approximate``/``sweep``)
additionally support the resilience flags (``docs/RESILIENCE.md``):
``--resume`` restarts from the last good epoch (or, for ``sweep``, the
next grid cell), ``--checkpoint-dir`` overrides the checkpoint location
(default: ``<out>.ckpt``), and ``--guard`` arms the divergence guard that
rolls back NaN/exploding epochs and retries them at a reduced LR.

Model checkpoints are ``.npz`` files (see
:mod:`repro.utils.serialization`) with a ``.meta.json`` sidecar recording
the architecture so later stages can rebuild it.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro import config
from repro.approx import (
    available_multipliers,
    get_multiplier,
    mean_relative_error,
    network_energy,
)
from repro.approx import backend as approx_backend
from repro.data import make_synthetic_cifar
from repro.errors import ReproError
from repro.ge import estimate_error_model
from repro.models import create_model
from repro.obs import console as obs_console
from repro.obs import events as obs_events
from repro.obs import metrics as met
from repro.obs import profiling as prof
from repro.obs import trace as tr
from repro.obs.report import render_summary, summarize_run
from repro.obs.runmeta import run_metadata
from repro.pipeline import METHODS, approximation_stage, quantization_stage
from repro.quant import quantize_model
from repro.sim import attach_multiplier, count_macs, evaluate_accuracy
from repro.train import TrainConfig, cross_entropy_loss, train_model
from repro.utils.serialization import load_model, save_model


def _add_data_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--num-train", type=int, default=600)
    parser.add_argument("--num-test", type=int, default=300)
    parser.add_argument("--image-size", type=int, default=16)
    parser.add_argument("--noise", type=float, default=0.4)
    parser.add_argument("--data-seed", type=int, default=42)


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="simplecnn")
    parser.add_argument("--width-mult", type=float, default=0.25)


def _add_train_args(parser: argparse.ArgumentParser, default_lr: float) -> None:
    parser.add_argument("--epochs", type=int, default=5)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--lr", type=float, default=default_lr)
    parser.add_argument("--seed", type=int, default=0)


def _dataset(args):
    return make_synthetic_cifar(
        num_train=args.num_train,
        num_test=args.num_test,
        image_size=args.image_size,
        noise=args.noise,
        seed=args.data_seed,
    )


def _train_config(args) -> TrainConfig:
    return TrainConfig(
        epochs=args.epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        momentum=0.9,
        seed=args.seed,
    )


def _resilience(args, console: obs_console.Console):
    """Build (CheckpointManager | None, DivergenceGuard | None) from flags.

    Checkpointing turns on when ``--checkpoint-dir`` is given, or when
    ``--resume`` is requested and a default directory can be derived from
    ``--out``.
    """
    from repro.resilience import CheckpointManager, DivergenceGuard, GuardConfig

    directory = args.checkpoint_dir
    if directory is None and getattr(args, "out", None):
        directory = f"{args.out}.ckpt"
    manager = None
    if args.checkpoint_dir is not None or (args.resume and directory is not None):
        if directory is None:
            raise ReproError("--resume needs --checkpoint-dir (or --out to derive it)")
        manager = CheckpointManager(
            directory, keep=args.keep_checkpoints, every=args.checkpoint_every
        )
        console.info(f"checkpoints: {directory}")
    guard = None
    if args.guard:
        guard = DivergenceGuard(
            GuardConfig(max_retries=args.max_retries, lr_backoff=args.lr_backoff)
        )
    return manager, guard


def _build_model(name: str, width_mult: float):
    kwargs = {"rng": 0}
    if name != "simplecnn":
        kwargs["width_mult"] = width_mult
    return create_model(name, **kwargs)


def _meta_path(checkpoint: Path) -> Path:
    return checkpoint.with_suffix(checkpoint.suffix + ".meta.json")


def _save_checkpoint(model, path: Path, meta: dict) -> None:
    import json

    path.parent.mkdir(parents=True, exist_ok=True)
    save_model(model, path)
    _meta_path(path).write_text(json.dumps(meta, indent=2))


def _load_checkpoint(path: Path):
    import json

    meta_file = _meta_path(path)
    if not meta_file.exists():
        raise ReproError(f"missing checkpoint metadata: {meta_file}")
    meta = json.loads(meta_file.read_text())
    model = _build_model(meta["model"], meta["width_mult"])
    if meta.get("quantized"):
        quantize_model(model, fold_bn=meta.get("fold_bn", True))
    load_model(model, path)
    return model, meta


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def cmd_train(args, console: obs_console.Console, log: obs_events.EventLog) -> int:
    data = _dataset(args)
    model = _build_model(args.model, args.width_mult)
    checkpoints, guard = _resilience(args, console)
    console.info(f"training {args.model} for {args.epochs} epochs")
    history = train_model(
        model,
        data,
        cross_entropy_loss(),
        _train_config(args),
        guard=guard,
        checkpoints=checkpoints,
        resume=args.resume,
    )
    log.eval("train/final", history.final_accuracy)
    console.result(f"final accuracy: {100 * history.final_accuracy:.2f}%")
    out = Path(args.out)
    _save_checkpoint(
        model,
        out,
        {"model": args.model, "width_mult": args.width_mult, "quantized": False},
    )
    console.result(f"saved: {out}")
    return 0


def cmd_quantize(args, console: obs_console.Console, log: obs_events.EventLog) -> int:
    data = _dataset(args)
    fp_model, meta = _load_checkpoint(Path(args.checkpoint))
    fold_bn = not args.keep_bn
    checkpoints, guard = _resilience(args, console)
    quant_model, result = quantization_stage(
        fp_model,
        data,
        train_config=_train_config(args),
        temperature=args.temperature,
        use_kd=not args.no_kd,
        fold_bn=fold_bn,
        guard=guard,
        checkpoints=checkpoints,
        resume=args.resume,
    )
    console.info(f"accuracy before FT: {100 * result.accuracy_before:.2f}%")
    console.result(f"accuracy after FT:  {100 * result.accuracy_after:.2f}%")
    out = Path(args.out)
    _save_checkpoint(
        quant_model,
        out,
        {**meta, "quantized": True, "fold_bn": fold_bn},
    )
    console.result(f"saved: {out}")
    return 0


def cmd_approximate(args, console: obs_console.Console, log: obs_events.EventLog) -> int:
    data = _dataset(args)
    quant_model, meta = _load_checkpoint(Path(args.checkpoint))
    if not meta.get("quantized"):
        raise ReproError("approximate requires a quantized checkpoint; run quantize first")
    checkpoints, guard = _resilience(args, console)
    approx_model, result = approximation_stage(
        quant_model,
        data,
        args.multiplier,
        method=args.method,
        train_config=_train_config(args),
        temperature=args.temperature,
        guard=guard,
        checkpoints=checkpoints,
        resume=args.resume,
    )
    console.info(f"initial accuracy: {100 * result.accuracy_before:.2f}%")
    console.result(f"final accuracy:   {100 * result.accuracy_after:.2f}%")
    macs = count_macs(approx_model, data.image_shape).total_macs
    report = network_energy(macs, get_multiplier(args.multiplier))
    console.result(f"energy savings:   {report.savings_percent:.0f}%")
    if args.out:
        out = Path(args.out)
        _save_checkpoint(approx_model, out, meta)
        console.result(f"saved: {out}")
    return 0


def cmd_evaluate(args, console: obs_console.Console, log: obs_events.EventLog) -> int:
    data = _dataset(args)
    model, meta = _load_checkpoint(Path(args.checkpoint))
    if args.multiplier:
        if not meta.get("quantized"):
            raise ReproError("--multiplier requires a quantized checkpoint")
        attach_multiplier(model, args.multiplier)
    acc = evaluate_accuracy(model, data.test_x, data.test_y)
    log.eval("evaluate", acc, multiplier=args.multiplier)
    console.result(f"accuracy: {100 * acc:.2f}%")
    return 0


def cmd_serve(args, console: obs_console.Console, log: obs_events.EventLog) -> int:
    import time

    from repro.serve import HttpFrontend, Server, run_load
    from repro.serve.loadgen import dataset_samples

    data = _dataset(args)
    model, meta = _load_checkpoint(Path(args.checkpoint))
    if args.multiplier:
        if not meta.get("quantized"):
            raise ReproError("--multiplier requires a quantized checkpoint")
        attach_multiplier(model, args.multiplier)
    # Serve knobs (--deadline-ms etc.) arrive via the repro.config CLI tier
    # installed by main(); ServeConfig resolves them there.
    server = Server(model)
    warm = dataset_samples(data, limit=min(server.config.max_batch, 8))
    server.start(warm=warm)
    console.info(
        f"serving {args.checkpoint}: {server.config.replicas} replica(s), "
        f"max batch {server.config.max_batch}, "
        f"deadline {server.config.deadline_ms}ms"
    )
    try:
        if args.port is not None:
            with HttpFrontend(server, host=args.host, port=args.port) as frontend:
                console.result(f"listening on {frontend.url} (POST /v1/predict)")
                try:
                    deadline = (
                        time.monotonic() + args.duration if args.duration > 0 else None
                    )
                    while deadline is None or time.monotonic() < deadline:
                        time.sleep(0.2)
                except KeyboardInterrupt:
                    console.info("interrupted; draining")
        else:
            report = run_load(
                server,
                data,
                requests=args.requests,
                concurrency=args.concurrency,
                batch_fraction=args.batch_fraction,
                batch_size=args.request_batch,
                slo_p95_ms=args.slo_p95_ms,
                mode="open" if args.arrival_rate is not None else "closed",
                offered_rps=args.arrival_rate,
            )
            log.emit("serve_load", **report.to_dict())
            rate = (
                f", offered {report.offered_rps:.1f} rps / achieved "
                f"{report.achieved_rps:.1f} rps"
                if report.mode == "open"
                else ""
            )
            console.result(
                f"served {report.requests} requests ({report.samples} samples) "
                f"in {report.duration_s:.2f}s: {report.throughput_sps:.1f} "
                f"samples/s, p50 {report.latency_p50_ms:.1f}ms, "
                f"p95 {report.latency_p95_ms:.1f}ms "
                f"({'within' if report.slo_met else 'MISSES'} "
                f"{report.slo_p95_ms:.0f}ms SLO), mean batch "
                f"{report.server_stats['mean_batch_size']:.1f}{rate}"
            )
    finally:
        server.stop()
    return 0


def cmd_sweep(args, console: obs_console.Console, log: obs_events.EventLog) -> int:
    from repro.pipeline import run_sweep

    data = _dataset(args)
    quant_model, meta = _load_checkpoint(Path(args.checkpoint))
    if not meta.get("quantized"):
        raise ReproError("sweep requires a quantized checkpoint; run quantize first")
    state_path = args.state or (f"{args.out}.partial.json" if args.out else None)
    if args.resume and state_path is None:
        raise ReproError("sweep --resume needs --state (or --out to derive it)")
    result = run_sweep(
        quant_model,
        data,
        multipliers=args.multipliers,
        methods=tuple(args.methods),
        train_config=_train_config(args),
        retries=args.retries,
        state_path=state_path,
        resume=args.resume,
        workers=args.workers,
        prefilter=args.prefilter,
    )
    console.result(
        f"{'multiplier':16s} {'method':12s} {'T2':>4s} {'init[%]':>8s} {'final[%]':>9s}"
    )
    for p in result.points:
        if p.ok:
            console.result(
                f"{p.multiplier:16s} {p.method:12s} {p.temperature:4.0f} "
                f"{100 * p.initial_accuracy:8.2f} {100 * p.final_accuracy:9.2f}"
            )
        else:
            console.result(
                f"{p.multiplier:16s} {p.method:12s} {p.temperature:4.0f} "
                f"FAILED ({p.error_type}, {p.attempts} attempt(s))"
            )
    if result.failures():
        console.warning(f"{len(result.failures())} cell(s) failed; see --log-json for faults")
    if args.out:
        result.to_json(args.out)
        console.result(f"saved: {args.out}")
    return 0


def cmd_resiliency(args, console: obs_console.Console, log: obs_events.EventLog) -> int:
    from repro.sim import layer_resiliency

    data = _dataset(args)
    quant_model, meta = _load_checkpoint(Path(args.checkpoint))
    if not meta.get("quantized"):
        raise ReproError("resiliency requires a quantized checkpoint")
    entries = layer_resiliency(quant_model, data.test_x, data.test_y, args.multiplier)
    console.info(
        f"per-layer accuracy drop under {args.multiplier} (most resilient first):"
    )
    for entry in entries:
        console.result(f"  {entry.layer_name:36s} {100 * entry.drop:7.2f}%")
    return 0


def cmd_multipliers(args, console: obs_console.Console, log: obs_events.EventLog) -> int:
    names = available_multipliers()
    if args.extended:
        names += ["truncated4bc", "truncated5bc", "mitchell", "drum3", "drum4"]
    console.result(f"{'name':16s} {'MRE[%]':>7s} {'savings[%]':>10s}")
    for name in names:
        mult = get_multiplier(name)
        console.result(
            f"{name:16s} {100 * mean_relative_error(mult):7.1f} "
            f"{100 * mult.energy_savings:10.0f}"
        )
    return 0


def cmd_profile(args, console: obs_console.Console, log: obs_events.EventLog) -> int:
    mult = get_multiplier(args.multiplier)
    model = estimate_error_model(mult, rng=args.seed, workers=args.workers)
    method = config.resolve("error_model_method")
    console.info(
        f"multiplier: {mult.name} (MRE {100 * mean_relative_error(mult):.1f}%, "
        f"method {method})"
    )
    if model.is_constant:
        console.result(f"error model: constant f(y) = {model.c:.2f} -> GE degenerates to STE")
    else:
        console.result(
            f"error model: f(y) = min({model.upper:.1f}, "
            f"max({model.k:.4f}*y + {model.c:.2f}, {model.lower:.1f}))"
        )
    return 0


def cmd_zoo(args, console: obs_console.Console, log: obs_events.EventLog) -> int:
    import json
    import time

    from repro.ge import rank_multipliers

    names = args.multipliers or None
    started = time.perf_counter()
    entries = rank_multipliers(names)
    elapsed_ms = 1000.0 * (time.perf_counter() - started)
    if args.top:
        entries = entries[: args.top]
    console.result(
        f"{'rank':>4s} {'name':16s} {'score':>8s} {'E[eps]':>9s} {'std[eps]':>9s} "
        f"{'k':>8s} {'model':>8s} {'savings[%]':>10s}"
    )
    for e in entries:
        console.result(
            f"{e.rank:4d} {e.name:16s} {e.score:8.4f} {e.eps_mean:9.1f} "
            f"{e.eps_std:9.1f} {e.k:+8.4f} {'STE' if e.is_constant else 'GE':>8s} "
            f"{100 * e.energy_savings:10.0f}"
        )
    console.info(f"ranked {len(entries)} multiplier(s) analytically in {elapsed_ms:.1f}ms")
    log.emit("zoo", count=len(entries), elapsed_ms=elapsed_ms)
    if args.json:
        payload = {"elapsed_ms": elapsed_ms, "entries": [e.to_dict() for e in entries]}
        Path(args.json).write_text(json.dumps(payload, indent=2))
        console.result(f"saved: {args.json}")
    return 0


def cmd_report(args, console: obs_console.Console, log: obs_events.EventLog) -> int:
    import json
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # the summary itself reports skips
        summary = summarize_run(args.logfile, strict=args.strict)
    if args.format == "json":
        console.result(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
    else:
        console.result(render_summary(summary))
    return 0


def cmd_trace(args, console: obs_console.Console, log: obs_events.EventLog) -> int:
    spans = tr.read_chrome_trace(args.tracefile)
    console.result(tr.render_flame_summary(spans, top=args.top))
    return 0


# ----------------------------------------------------------------------
# parser / entry point
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    obs_flags = argparse.ArgumentParser(add_help=False)
    group = obs_flags.add_argument_group("observability")
    group.add_argument(
        "--log-json",
        metavar="PATH",
        help="write structured JSONL events to PATH (see 'repro report')",
    )
    group.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress output; final result lines stay on stdout",
    )
    group.add_argument(
        "--verbose",
        action="store_true",
        help="render the structured event stream on the console",
    )
    group.add_argument(
        "--profile",
        action="store_true",
        help="profile the hot paths and print the timer table afterwards",
    )
    group.add_argument(
        "--trace",
        metavar="PATH",
        help="record hierarchical spans and write a Chrome trace_event JSON "
        "to PATH (view in chrome://tracing / Perfetto, or 'repro trace PATH')",
    )
    group.add_argument(
        "--metrics",
        action="store_true",
        help="collect counters/gauges/latency histograms and emit snapshots "
        "into the event log (rendered by 'repro report')",
    )
    group.add_argument(
        "--log-rotate-mb",
        type=float,
        default=None,
        metavar="MB",
        help="rotate the --log-json file into numbered segments once it "
        "exceeds MB megabytes ('repro report' reads them transparently)",
    )

    par_flags = argparse.ArgumentParser(add_help=False)
    par = par_flags.add_argument_group("parallelism")
    par.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker pool size for sweeps/profiling and threaded GEMM chunking "
        "(default: 1 = serial; results are identical at any worker count)",
    )

    gemm_flags = argparse.ArgumentParser(add_help=False)
    gemm = gemm_flags.add_argument_group("gemm backend")
    gemm.add_argument(
        "--gemm-backend",
        choices=approx_backend.available_backends(),
        default=None,
        metavar="NAME",
        help="GEMM execution backend (default: REPRO_GEMM_BACKEND or plan-lut); "
        f"one of: {', '.join(approx_backend.available_backends())}. Backend "
        "choice changes speed only — results are bitwise identical",
    )

    em_flags = argparse.ArgumentParser(add_help=False)
    em = em_flags.add_argument_group("error model")
    em.add_argument(
        "--error-model-method",
        choices=("auto", "analytic", "montecarlo"),
        default=None,
        metavar="NAME",
        help="error-model estimator (default: REPRO_ERROR_MODEL_METHOD or auto): "
        "auto = closed-form analytic with Monte-Carlo fallback, analytic = "
        "closed-form only, montecarlo = the paper's 50-simulation sampling path",
    )

    serve_flags = argparse.ArgumentParser(add_help=False)
    sv = serve_flags.add_argument_group(
        "serving (defaults: REPRO_SERVE_* environment, then built-ins)"
    )
    sv.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="micro-batching latency deadline from the oldest queued request",
    )
    sv.add_argument(
        "--max-batch",
        type=int,
        default=None,
        metavar="N",
        help="maximum samples coalesced into one served micro-batch",
    )
    sv.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        metavar="N",
        help="queued-sample bound before requests are rejected with backpressure",
    )
    sv.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="N",
        help="model replica workers (default: one per usable CPU)",
    )

    res_flags = argparse.ArgumentParser(add_help=False)
    res = res_flags.add_argument_group("resilience")
    res.add_argument(
        "--resume",
        action="store_true",
        help="restart from the last good checkpoint (or sweep cell) instead of scratch",
    )
    res.add_argument(
        "--checkpoint-dir",
        metavar="PATH",
        help="directory for crash-safe epoch checkpoints (default: <out>.ckpt)",
    )
    res.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="save a checkpoint every N epochs (default: 1)",
    )
    res.add_argument(
        "--keep-checkpoints",
        type=int,
        default=3,
        metavar="N",
        help="retain the newest N checkpoints (default: 3)",
    )
    res.add_argument(
        "--guard",
        action="store_true",
        help="arm the divergence guard (rollback + LR backoff on NaN/explosion)",
    )
    res.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="N",
        help="guard: rollback retries per epoch before giving up (default: 3)",
    )
    res.add_argument(
        "--lr-backoff",
        type=float,
        default=0.5,
        metavar="F",
        help="guard: LR scale factor applied on each rollback (default: 0.5)",
    )

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate-CNN optimization flow (DATE 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "train", help="train a full-precision model", parents=[obs_flags, res_flags]
    )
    _add_model_args(p)
    _add_data_args(p)
    _add_train_args(p, default_lr=0.05)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_train)

    p = sub.add_parser(
        "quantize",
        help="8A4W quantization stage",
        parents=[obs_flags, res_flags, gemm_flags],
    )
    _add_data_args(p)
    _add_train_args(p, default_lr=0.02)
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--temperature", type=float, default=1.0)
    p.add_argument("--no-kd", action="store_true", help="plain fine-tuning instead of KD")
    p.add_argument("--keep-bn", action="store_true", help="do not fold BatchNorm")
    p.set_defaults(func=cmd_quantize)

    p = sub.add_parser(
        "approximate",
        help="approximation stage",
        parents=[obs_flags, res_flags, par_flags, gemm_flags, em_flags],
    )
    _add_data_args(p)
    _add_train_args(p, default_lr=0.02)
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--multiplier", required=True)
    p.add_argument("--method", choices=METHODS, default="approxkd_ge")
    p.add_argument("--temperature", type=float, default=5.0)
    p.add_argument("--out")
    p.set_defaults(func=cmd_approximate)

    p = sub.add_parser(
        "evaluate",
        help="evaluate a checkpoint",
        parents=[obs_flags, par_flags, gemm_flags],
    )
    _add_data_args(p)
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--multiplier")
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser(
        "sweep",
        help="multiplier x method sweep on a quantized checkpoint",
        parents=[obs_flags, res_flags, par_flags, gemm_flags, em_flags],
    )
    _add_data_args(p)
    _add_train_args(p, default_lr=0.02)
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--multipliers", nargs="+", required=True)
    p.add_argument("--methods", nargs="+", default=["normal", "approxkd_ge"], choices=METHODS)
    p.add_argument("--out", help="write the sweep as JSON")
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry a failing sweep cell this many times before recording the failure",
    )
    p.add_argument(
        "--state",
        metavar="PATH",
        help="partial-result file persisted after every cell (default: <out>.partial.json)",
    )
    p.add_argument(
        "--prefilter",
        type=int,
        default=None,
        metavar="N",
        help="rank the requested multipliers analytically and sweep only the "
        "N most promising (milliseconds; skips whole train cells)",
    )
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "resiliency", help="per-layer resiliency analysis", parents=[obs_flags]
    )
    _add_data_args(p)
    p.add_argument("--checkpoint", required=True)
    p.add_argument("--multiplier", required=True)
    p.set_defaults(func=cmd_resiliency)

    p = sub.add_parser(
        "multipliers", help="list available multipliers", parents=[obs_flags]
    )
    p.add_argument("--extended", action="store_true", help="include extension families")
    p.set_defaults(func=cmd_multipliers)

    p = sub.add_parser(
        "profile",
        help="fit a multiplier's error model",
        parents=[obs_flags, par_flags, gemm_flags, em_flags],
    )
    p.add_argument("--multiplier", required=True)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "zoo",
        help="rank the multiplier registry by analytic error statistics",
        parents=[obs_flags],
    )
    p.add_argument(
        "--multipliers",
        nargs="+",
        default=None,
        help="rank only these multipliers (default: the whole registry)",
    )
    p.add_argument(
        "--top",
        type=int,
        default=None,
        metavar="N",
        help="show only the N best-ranked multipliers",
    )
    p.add_argument(
        "--json",
        metavar="PATH",
        help="also write the full ranking (with model parameters) as JSON",
    )
    p.set_defaults(func=cmd_zoo)

    p = sub.add_parser(
        "serve",
        help="serve a checkpoint with micro-batched inference (docs/SERVING.md)",
        parents=[obs_flags, gemm_flags, serve_flags],
    )
    p.add_argument("checkpoint", help="model checkpoint (.npz) to serve")
    p.add_argument(
        "--multiplier",
        default=None,
        help="attach an approximate multiplier (quantized checkpoints only)",
    )
    _add_data_args(p)
    p.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="PORT",
        help="expose an HTTP front end on PORT (0 = ephemeral) instead of "
        "running the built-in load",
    )
    p.add_argument("--host", default="127.0.0.1", help="HTTP bind host")
    p.add_argument(
        "--duration",
        type=float,
        default=0.0,
        metavar="S",
        help="with --port: serve for S seconds then drain (0 = until ctrl-C)",
    )
    p.add_argument(
        "--requests",
        type=int,
        default=256,
        metavar="N",
        help="without --port: total load-run requests (default: 256)",
    )
    p.add_argument(
        "--concurrency",
        type=int,
        default=8,
        metavar="N",
        help="without --port: concurrent load-run clients (default: 8)",
    )
    p.add_argument(
        "--batch-fraction",
        type=float,
        default=0.25,
        metavar="F",
        help="fraction of load-run requests that are batches (default: 0.25)",
    )
    p.add_argument(
        "--request-batch",
        type=int,
        default=8,
        metavar="N",
        help="samples per batch request in the load run (default: 8)",
    )
    p.add_argument(
        "--slo-p95-ms",
        type=float,
        default=250.0,
        metavar="MS",
        help="p95 latency SLO the load report is judged against (default: 250)",
    )
    p.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        metavar="RPS",
        help="without --port: open-loop load at this offered request rate "
        "(Poisson arrivals) instead of the closed-loop client pool",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "report", help="summarise a JSONL run log", parents=[obs_flags]
    )
    p.add_argument("logfile", help="event log written with --log-json")
    p.add_argument(
        "--strict",
        action="store_true",
        help="fail on a truncated final record instead of skipping it",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format: human-readable text (default) or the full "
        "RunSummary as machine-readable JSON",
    )
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "trace",
        help="self-time flame summary of a Chrome trace written with --trace",
        parents=[obs_flags],
    )
    p.add_argument("tracefile", help="Chrome trace_event JSON written with --trace")
    p.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="show the N hottest span names by self time (default: 15)",
    )
    p.set_defaults(func=cmd_trace)

    return parser


def _loggable_config(args) -> dict:
    """JSON-safe view of the parsed arguments for the run_start event."""
    skip = {"func", "log_json", "quiet", "verbose", "profile", "trace", "metrics",
            "log_rotate_mb"}
    return {
        key: value
        for key, value in vars(args).items()
        if key not in skip and isinstance(value, (str, int, float, bool, list, type(None)))
    }


def main(argv: list[str] | None = None) -> int:
    from repro.parallel import ParallelConfig, set_default_config

    args = build_parser().parse_args(argv)
    console = obs_console.get_console()
    # Install the worker count as the process-wide default so deep call
    # sites (chunked GEMM, error-model fitting inside stages) see it too.
    previous_parallel = set_default_config(
        ParallelConfig(workers=max(1, getattr(args, "workers", 1)))
    )
    # Runtime-knob flags land in the repro.config CLI tier (above the
    # environment, below configure()/scopes) and are restored on exit.
    previous_cli = config.set_cli_overrides(
        {
            "gemm_backend": getattr(args, "gemm_backend", None),
            "error_model_method": getattr(args, "error_model_method", None),
            "serve_deadline_ms": getattr(args, "deadline_ms", None),
            "serve_max_batch": getattr(args, "max_batch", None),
            "serve_queue_depth": getattr(args, "queue_depth", None),
            "serve_replicas": getattr(args, "replicas", None),
        }
    )
    if args.quiet:
        console.level = obs_events.WARNING
    elif args.verbose:
        console.level = obs_events.DEBUG
    else:
        console.level = obs_events.INFO

    log = obs_events.EventLog()
    if args.log_json:
        max_bytes = None
        if args.log_rotate_mb is not None:
            max_bytes = max(1024, int(args.log_rotate_mb * 1024 * 1024))
        log.add_sink(obs_events.JsonlSink(args.log_json, max_bytes=max_bytes))
    if args.verbose:
        log.add_sink(obs_console.ConsoleSink(console, level=obs_events.DEBUG))
    previous_log = obs_events.set_event_log(log)

    if args.profile:
        prof.reset_profiling()
        prof.enable_profiling()
    if args.trace:
        tr.reset_tracing()
        tr.enable_tracing()
    if args.metrics:
        met.reset_metrics()
        met.enable_metrics()

    log.run_start(
        command=args.command,
        config=_loggable_config(args),
        meta=run_metadata(command=args.command),
    )
    try:
        error: str | None = None
        try:
            code = args.func(args, console, log)
            status = "ok" if code == 0 else "failed"
        except ReproError as exc:
            console.error(str(exc))
            code, status, error = 1, "error", str(exc)
        if args.profile:
            report = prof.profile_report()
            prof.disable_profiling()
            log.emit(obs_events.PROFILE, **report.to_dict())
            console.result(report.to_table())
        if args.metrics:
            met.emit_snapshot(log, scope="final")
        if args.trace:
            tr.disable_tracing()
            spans = tr.get_trace_recorder().spans()
            tr.write_chrome_trace(args.trace, spans)
            log.emit(
                obs_events.TRACE,
                path=str(args.trace),
                spans=len(spans),
                top_self_time=tr.self_time_summary(spans)[:10],
            )
            console.info(f"trace: {args.trace} ({len(spans)} spans)")
        if error is not None:
            log.run_end(status=status, error=error)
        else:
            log.run_end(status=status, exit_code=code)
    finally:
        if args.profile:
            prof.disable_profiling()
        if args.trace:
            tr.disable_tracing()
        if args.metrics:
            met.disable_metrics()
        obs_events.set_event_log(previous_log)
        log.close()
        set_default_config(previous_parallel)
        config.set_cli_overrides(previous_cli)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
