"""Learning-rate schedules.

The paper fine-tunes with an initial rate in {1e-4, 1e-5} decayed by 0.1
every 15 epochs; :class:`StepDecay` reproduces that schedule.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.train.optim import Optimizer


class LRSchedule:
    """Base schedule mapping epoch index to a learning rate."""

    def __init__(self, initial_lr: float):
        if initial_lr <= 0:
            raise ConfigError(f"initial_lr must be positive, got {initial_lr}")
        self.initial_lr = float(initial_lr)

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError

    def apply(self, optimizer: Optimizer, epoch: int) -> float:
        lr = self.lr_at(epoch)
        optimizer.lr = lr
        return lr


class ConstantLR(LRSchedule):
    def lr_at(self, epoch: int) -> float:
        return self.initial_lr


class StepDecay(LRSchedule):
    """``lr = initial · decay^(epoch // every)`` — paper: decay 0.1 / 15 ep."""

    def __init__(self, initial_lr: float, decay: float = 0.1, every: int = 15):
        super().__init__(initial_lr)
        if not 0 < decay <= 1:
            raise ConfigError(f"decay must be in (0, 1], got {decay}")
        if every < 1:
            raise ConfigError(f"decay period must be >= 1, got {every}")
        self.decay = float(decay)
        self.every = int(every)

    def lr_at(self, epoch: int) -> float:
        return self.initial_lr * self.decay ** (epoch // self.every)


class CosineDecay(LRSchedule):
    """Cosine annealing to ``min_lr`` over ``total_epochs``."""

    def __init__(self, initial_lr: float, total_epochs: int, min_lr: float = 0.0):
        super().__init__(initial_lr)
        if total_epochs < 1:
            raise ConfigError(f"total_epochs must be >= 1, got {total_epochs}")
        self.total_epochs = int(total_epochs)
        self.min_lr = float(min_lr)

    def lr_at(self, epoch: int) -> float:
        import math

        t = min(epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.initial_lr - self.min_lr) * (1 + math.cos(math.pi * t))
