"""Trainer callbacks: early stopping, best-weights tracking, telemetry.

Callbacks observe the training loop after each evaluated epoch and may
request a stop. They compose: ``train_model(..., callbacks=[...])``.

When a :class:`repro.resilience.DivergenceGuard` is active, callbacks are
also notified of every rollback through :meth:`Callback.on_rollback`, so
stateful callbacks (patience counters, weight snapshots) can discount the
rolled-back epoch. The guard itself is not a callback — it needs to run
inside the batch loop — and is passed to ``train_model`` separately via
the ``guard`` keyword.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Module
from repro.obs import events as obs_events
from repro.obs import metrics as met
from repro.obs.stats import LayerStats, StatsHook
from repro.train.trainer import History


class Callback:
    """Base callback; ``on_epoch_end`` returning True stops training."""

    def on_epoch_end(self, epoch: int, history: History, model: Module) -> bool:
        return False

    def on_rollback(self, epoch: int, reason: str, model: Module) -> None:
        """Called when the divergence guard rolled ``epoch`` back.

        The epoch was never committed to the history; ``model`` has
        already been restored to its epoch-start state. Default: no-op.
        """


class EarlyStopping(Callback):
    """Stop when test accuracy has not improved for ``patience`` epochs."""

    def __init__(self, patience: int = 5, min_delta: float = 0.0):
        if patience < 1:
            raise ConfigError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self.min_delta = float(min_delta)
        self._best = -np.inf
        self._stale = 0

    def on_epoch_end(self, epoch: int, history: History, model: Module) -> bool:
        if not history.test_accuracy:
            return False
        current = history.test_accuracy[-1]
        if current > self._best + self.min_delta:
            self._best = current
            self._stale = 0
            return False
        self._stale += 1
        return self._stale >= self.patience


class BestWeightsKeeper(Callback):
    """Snapshot the model state at its best test accuracy.

    Call :meth:`restore` after training to roll back to the best epoch.
    """

    def __init__(self):
        self._best = -np.inf
        self._state: dict | None = None

    def on_epoch_end(self, epoch: int, history: History, model: Module) -> bool:
        if history.test_accuracy and history.test_accuracy[-1] > self._best:
            self._best = history.test_accuracy[-1]
            self._state = model.state_dict()
        return False

    @property
    def best_accuracy(self) -> float:
        if self._state is None:
            raise ConfigError("no snapshot recorded yet")
        return float(self._best)

    def restore(self, model: Module) -> None:
        """Load the best snapshot into ``model``."""
        if self._state is None:
            raise ConfigError("no snapshot recorded yet")
        model.load_state_dict(self._state)


class TelemetryCallback(Callback):
    """Drain :class:`~repro.obs.StatsHook` accumulators once per epoch.

    At each evaluated epoch the callback samples gradient norms, snapshots
    (and resets) every hook, keeps the snapshots in ``per_epoch`` for
    programmatic use, and emits one ``layer_stats`` event per layer to the
    event log. Never requests a stop.

    >>> hooks = attach_stats_hooks(model, layer_types=(QuantConv2d,))
    >>> train_model(model, data, loss, cfg, callbacks=[TelemetryCallback(hooks)])
    """

    def __init__(
        self,
        hooks: dict[str, StatsHook],
        event_log: "obs_events.EventLog | None" = None,
    ):
        self.hooks = hooks
        self._log = event_log
        self.per_epoch: list[dict[str, LayerStats]] = []

    def on_epoch_end(self, epoch: int, history: History, model: Module) -> bool:
        log = self._log or obs_events.get_event_log()
        snapshots: dict[str, LayerStats] = {}
        for name, hook in self.hooks.items():
            hook.observe_gradients()
            stats = hook.snapshot(reset=True)
            snapshots[name] = stats
            if log.enabled:
                log.emit(obs_events.LAYER_STATS, epoch=epoch + 1, **stats.to_dict())
            if met.enabled:
                # Gauge series per layer: the metrics snapshots turn the
                # per-epoch StatsHook values into a time series.
                met.set_gauge("layer.eps_mean", float(stats.eps_mean), layer=name)
                if stats.grad_norm is not None:
                    met.set_gauge("layer.grad_norm", float(stats.grad_norm), layer=name)
        self.per_epoch.append(snapshots)
        return False
