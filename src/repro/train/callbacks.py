"""Trainer callbacks: early stopping and best-weights tracking.

Callbacks observe the training loop after each evaluated epoch and may
request a stop. They compose: ``train_model(..., callbacks=[...])``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.module import Module
from repro.train.trainer import History


class Callback:
    """Base callback; ``on_epoch_end`` returning True stops training."""

    def on_epoch_end(self, epoch: int, history: History, model: Module) -> bool:
        return False


class EarlyStopping(Callback):
    """Stop when test accuracy has not improved for ``patience`` epochs."""

    def __init__(self, patience: int = 5, min_delta: float = 0.0):
        if patience < 1:
            raise ConfigError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self.min_delta = float(min_delta)
        self._best = -np.inf
        self._stale = 0

    def on_epoch_end(self, epoch: int, history: History, model: Module) -> bool:
        if not history.test_accuracy:
            return False
        current = history.test_accuracy[-1]
        if current > self._best + self.min_delta:
            self._best = current
            self._stale = 0
            return False
        self._stale += 1
        return self._stale >= self.patience


class BestWeightsKeeper(Callback):
    """Snapshot the model state at its best test accuracy.

    Call :meth:`restore` after training to roll back to the best epoch.
    """

    def __init__(self):
        self._best = -np.inf
        self._state: dict | None = None

    def on_epoch_end(self, epoch: int, history: History, model: Module) -> bool:
        if history.test_accuracy and history.test_accuracy[-1] > self._best:
            self._best = history.test_accuracy[-1]
            self._state = model.state_dict()
        return False

    @property
    def best_accuracy(self) -> float:
        if self._state is None:
            raise ConfigError("no snapshot recorded yet")
        return float(self._best)

    def restore(self, model: Module) -> None:
        """Load the best snapshot into ``model``."""
        if self._state is None:
            raise ConfigError("no snapshot recorded yet")
        model.load_state_dict(self._state)
