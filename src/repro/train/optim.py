"""Optimizers (SGD with momentum — the paper's choice — plus Adam)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.parameter import Parameter


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ConfigError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # -- checkpointable state ------------------------------------------------
    def state_dict(self) -> dict:
        """Copy of the optimizer's internal state (momentum buffers etc.).

        Values are floats/ints or lists of arrays parallel to ``params``;
        :class:`repro.resilience.CheckpointManager` persists them so a
        resumed run continues with identical update dynamics.
        """
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict` (in place)."""
        self.lr = float(state["lr"])

    def _load_buffers(
        self, own: list[np.ndarray], saved: list[np.ndarray], name: str
    ) -> None:
        if len(saved) != len(own):
            raise ConfigError(
                f"optimizer state mismatch: {len(saved)} saved {name} buffers "
                f"for {len(own)} parameters"
            )
        for buf, value in zip(own, saved):
            value = np.asarray(value)
            if buf.shape != value.shape:
                raise ConfigError(
                    f"optimizer {name} buffer shape mismatch: "
                    f"expected {buf.shape}, got {value.shape}"
                )
            buf[...] = value


def global_grad_norm(params: list[Parameter]) -> float:
    """Global L2 norm over all parameter gradients (skips missing grads)."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad.astype(np.float64) ** 2).sum())
    return float(np.sqrt(total))


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm. Parameters without gradients are skipped.
    """
    if max_norm <= 0:
        raise ConfigError(f"max_norm must be positive, got {max_norm}")
    norm = global_grad_norm(params)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, weight decay and optional
    global-norm gradient clipping (stabilises STE fine-tuning at the small
    batch counts used by the CPU-scale benchmarks)."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
        grad_clip: float | None = None,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigError(f"momentum must be in [0, 1), got {momentum}")
        if nesterov and momentum == 0.0:
            raise ConfigError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        self.grad_clip = grad_clip
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        if self.grad_clip is not None:
            clip_grad_norm(self.params, self.grad_clip)
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = grad + self.momentum * v if self.nesterov else v
            else:
                update = grad
            p.data = p.data - self.lr * update

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._load_buffers(self._velocity, state["velocity"], "velocity")


class Adam(Optimizer):
    """Adam optimizer (used by some ablations; the paper itself uses SGD)."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.betas = betas
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        state["t"] = self._t
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._load_buffers(self._m, state["m"], "m")
        self._load_buffers(self._v, state["v"], "v")
        self._t = int(state["t"])
