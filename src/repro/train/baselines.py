"""Baseline fine-tuning losses from the literature.

- **Normal (passive) retraining** [4, AxTrain]: plain cross-entropy training
  of the approximate network, gradients through the plain STE — the
  ``cross_entropy_loss`` closure in :mod:`repro.train.trainer`.
- **Alpha regularization** [5, ProxSim]: adds ``α · Σ_l ‖y_l‖²`` over the
  integer-code GEMM outputs of every quantized layer, pushing activations
  toward the low-magnitude region where approximate multipliers are most
  accurate. The original paper reports best results around ``α = 1e-11``
  (from a sweep of 1e-6 … 1e-12) — consistent with the penalty being a raw
  sum of squared integer outputs, which is how we implement it.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.ops_basic import add, mul, pow_scalar
from repro.autograd.ops_loss import softmax_cross_entropy
from repro.autograd.ops_reduce import sum_
from repro.autograd.tensor import Tensor
from repro.errors import ConfigError
from repro.nn.module import Module
from repro.quant.convert import quant_layers


def alpha_regularization_loss(model: Module, alpha: float = 1e-11):
    """Build the alpha-regularization ``batch_loss`` for ``model``.

    Installs an output collector on every quantized layer of ``model``; the
    returned closure consumes the collected layer outputs each batch. Call
    :func:`remove_alpha_regularization` to detach the collectors.
    """
    if alpha < 0:
        raise ConfigError(f"alpha must be non-negative, got {alpha}")
    collector: list = []
    installed = 0
    for layer in quant_layers(model):
        layer.output_collector = collector
        installed += 1
    if installed == 0:
        raise ConfigError("alpha regularization requires a quantized model")

    def loss(logits: Tensor, labels: np.ndarray, indices: np.ndarray) -> Tensor:
        base = softmax_cross_entropy(logits, labels)
        penalty: Tensor | None = None
        for out, inv_step in collector:
            term = sum_(pow_scalar(mul(out, inv_step), 2.0))
            penalty = term if penalty is None else add(penalty, term)
        collector.clear()
        if penalty is None:
            return base
        return add(base, mul(penalty, alpha))

    return loss


def remove_alpha_regularization(model: Module) -> None:
    """Detach alpha-regularization collectors installed on ``model``."""
    for layer in quant_layers(model):
        layer.output_collector = None
