"""Generic fine-tuning loop shared by all retraining methods.

The paper's methods differ only in the per-batch loss (plain cross-entropy,
KD losses, alpha regularization) and in the backward behaviour of the
quantized layers (STE vs gradient estimation, configured on the layers
themselves). The trainer is agnostic to all of that: it takes a
``batch_loss(logits, labels, indices) -> Tensor`` closure and handles
batching, augmentation, the optimizer, the LR schedule and history
recording.

Resilience (``docs/RESILIENCE.md``) is opt-in through two keyword
arguments: ``checkpoints`` (a :class:`repro.resilience.CheckpointManager`)
saves an atomic, checksummed checkpoint after each epoch and — together
with ``resume=True`` — continues a killed run bit-for-bit (model,
optimizer momentum, RNG stream and history are all restored, so the
resumed run's remaining epochs are identical to an uninterrupted one);
``guard`` (a :class:`repro.resilience.DivergenceGuard`) rolls a diverging
epoch back and retries it at a reduced learning rate before a NaN can
reach the weights.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.autograd.tensor import Tensor
from repro.data.dataloader import augment_batch
from repro.data.synthetic_cifar import Dataset
from repro.errors import ConfigError, DivergenceError
from repro.nn.module import Module
from repro.obs import events as obs_events
from repro.obs import metrics as met
from repro.obs import trace as tr
from repro.sim.proxsim import evaluate_accuracy
from repro.train.lr_schedule import LRSchedule, StepDecay
from repro.train.optim import SGD, global_grad_norm
from repro.utils.rng import get_rng_state, new_rng, set_rng_state

if TYPE_CHECKING:  # imported lazily at runtime to keep the module graph acyclic
    from repro.resilience.checkpoint import CheckpointManager
    from repro.resilience.guard import DivergenceGuard

BatchLoss = Callable[[Tensor, np.ndarray, np.ndarray], Tensor]


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters of one fine-tuning run.

    Defaults mirror the paper's fine-tuning setup (section IV-B): minibatch
    128, SGD momentum, step decay 0.1 every 15 epochs.
    """

    epochs: int = 30
    batch_size: int = 128
    lr: float = 1e-2
    momentum: float = 0.9
    weight_decay: float = 0.0
    lr_decay: float = 0.1
    lr_decay_every: int = 15
    grad_clip: float | None = None
    augment: bool = False
    seed: int = 0
    eval_every: int = 1
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ConfigError(f"epochs must be >= 0, got {self.epochs}")

    def make_schedule(self) -> LRSchedule:
        return StepDecay(self.lr, self.lr_decay, self.lr_decay_every)


@dataclass
class History:
    """Per-epoch training record.

    ``epoch_time`` holds the wall seconds of each individual epoch
    (training batches plus that epoch's evaluation, if any); ``wall_time``
    remains the total of the whole run for backwards compatibility.
    """

    train_loss: list[float] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)
    learning_rate: list[float] = field(default_factory=list)
    epoch_time: list[float] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def final_accuracy(self) -> float:
        if not self.test_accuracy:
            raise ConfigError("no evaluations recorded")
        return self.test_accuracy[-1]

    @property
    def best_accuracy(self) -> float:
        if not self.test_accuracy:
            raise ConfigError("no evaluations recorded")
        return max(self.test_accuracy)


def history_to_dict(history: History) -> dict:
    """JSON-safe view of a :class:`History` (checkpoint payloads)."""
    return asdict(history)


def history_from_dict(payload: dict) -> History:
    """Rebuild a :class:`History` saved with :func:`history_to_dict`."""
    return History(
        train_loss=[float(v) for v in payload.get("train_loss", [])],
        test_accuracy=[float(v) for v in payload.get("test_accuracy", [])],
        learning_rate=[float(v) for v in payload.get("learning_rate", [])],
        epoch_time=[float(v) for v in payload.get("epoch_time", [])],
        wall_time=float(payload.get("wall_time", 0.0)),
    )


def train_model(
    model: Module,
    data: Dataset,
    batch_loss: BatchLoss,
    config: TrainConfig,
    callbacks: list | None = None,
    *,
    guard: "DivergenceGuard | None" = None,
    checkpoints: "CheckpointManager | None" = None,
    resume: bool = False,
) -> History:
    """Run the fine-tuning loop and return its :class:`History`.

    ``callbacks`` (see :mod:`repro.train.callbacks`) are invoked after each
    evaluated epoch; any callback returning True stops training early.

    ``checkpoints`` saves crash-safe state after every epoch (at the
    manager's cadence) and, with ``resume=True``, restarts from the newest
    valid checkpoint instead of from scratch. ``guard`` watches each epoch
    for divergence (non-finite loss, exploding gradients, accuracy
    collapse), rolls back to the epoch-start snapshot and retries with a
    reduced learning rate; when its retry budget is spent a
    :class:`repro.errors.DivergenceError` is raised.
    """
    rng = new_rng(config.seed)
    optimizer = SGD(
        model.parameters(),
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
        grad_clip=config.grad_clip,
    )
    schedule = config.make_schedule()
    history = History()
    log = obs_events.get_event_log()

    start_epoch = 0
    if checkpoints is not None and resume:
        loaded = checkpoints.load_latest(model, optimizer)
        if loaded is not None:
            start_epoch = loaded.epoch
            if "history" in loaded.state:
                history = history_from_dict(loaded.state["history"])
            if "rng" in loaded.state:
                set_rng_state(rng, loaded.state["rng"])
            if guard is not None:
                guard.lr_scale = float(loaded.state.get("lr_scale", 1.0))
            if log.enabled:
                log.checkpoint("resume", epoch=start_epoch, path=str(loaded.path))

    started = time.perf_counter()
    n = len(data.train_x)
    epoch = start_epoch
    while epoch < config.epochs:
        # A `continue` or `break` inside the `with` still closes the epoch
        # span, so rollback retries show up as separate epoch spans.
        with tr.span("epoch", epoch=epoch + 1):
            epoch_started = time.perf_counter()
            if guard is not None:
                guard.remember(epoch, model, optimizer, rng)
            lr = schedule.lr_at(epoch) * (guard.lr_scale if guard is not None else 1.0)
            optimizer.lr = lr
            model.train()
            order = rng.permutation(n)
            epoch_loss, batches = 0.0, 0
            failure: tuple[str, str] | None = None
            for start in range(0, n, config.batch_size):
                batch_started = time.perf_counter() if met.enabled else 0.0
                idx = order[start : start + config.batch_size]
                xb = data.train_x[idx]
                if config.augment:
                    xb = augment_batch(xb, rng)
                yb = data.train_y[idx]
                optimizer.zero_grad()
                logits = model(Tensor(xb))
                loss = batch_loss(logits, yb, idx)
                loss_value = loss.item()
                if guard is not None:
                    reason = guard.check_loss(loss_value)
                    if reason is not None:
                        failure = (reason, f"batch {batches}: loss={loss_value!r}")
                        break
                loss.backward()
                if guard is not None and guard.config.max_grad_norm is not None:
                    grad_norm = global_grad_norm(optimizer.params)
                    reason = guard.check_grad_norm(grad_norm)
                    if reason is not None:
                        failure = (reason, f"batch {batches}: grad_norm={grad_norm:.3e}")
                        break
                optimizer.step()
                epoch_loss += loss_value
                batches += 1
                if met.enabled:
                    met.observe(
                        "train.batch_seconds", time.perf_counter() - batch_started
                    )

            acc = None
            if failure is None and (
                (epoch + 1) % config.eval_every == 0 or epoch == config.epochs - 1
            ):
                acc = evaluate_accuracy(
                    model, data.test_x, data.test_y, config.batch_size
                )
                if guard is not None:
                    reason = guard.check_accuracy(acc)
                    if reason is not None:
                        failure = (reason, f"accuracy={acc:.4f}")

            if failure is not None:
                reason, detail = failure
                retrying = guard.trip(epoch, reason, detail, model, optimizer, rng)
                if callbacks:
                    for cb in callbacks:
                        handler = getattr(cb, "on_rollback", None)
                        if handler is not None:
                            handler(epoch, reason, model)
                if retrying:
                    continue  # retry the same epoch at the reduced LR
                raise DivergenceError(
                    f"training diverged at epoch {epoch + 1}/{config.epochs} "
                    f"({reason}: {detail}) and the guard's retry budget is spent "
                    f"after {guard.attempts} rollback(s)"
                )

            history.train_loss.append(epoch_loss / max(batches, 1))
            history.learning_rate.append(lr)
            if acc is not None:
                history.test_accuracy.append(acc)
                if guard is not None:
                    guard.record_accuracy(acc)
            history.epoch_time.append(time.perf_counter() - epoch_started)
            if log.enabled:
                log.epoch(
                    epoch=epoch + 1,
                    epochs=config.epochs,
                    loss=history.train_loss[-1],
                    lr=lr,
                    accuracy=acc,
                    epoch_time=history.epoch_time[-1],
                )
            met.emit_snapshot(log, scope="epoch", epoch=epoch + 1)
            if checkpoints is not None and (
                (epoch + 1) % checkpoints.every == 0 or epoch == config.epochs - 1
            ):
                checkpoints.save(
                    epoch + 1,
                    model,
                    optimizer,
                    state={
                        "rng": get_rng_state(rng),
                        "history": history_to_dict(history),
                        "lr_scale": guard.lr_scale if guard is not None else 1.0,
                        "seed": config.seed,
                    },
                )
            if acc is not None:
                if config.verbose:
                    print(
                        f"epoch {epoch + 1:3d}/{config.epochs}  lr={lr:.2e}  "
                        f"loss={history.train_loss[-1]:.4f}  acc={acc:.4f}"
                    )
                if callbacks and any(
                    cb.on_epoch_end(epoch, history, model) for cb in callbacks
                ):
                    break
            epoch += 1
    if not history.test_accuracy and config.epochs == 0:
        history.test_accuracy.append(
            evaluate_accuracy(model, data.test_x, data.test_y, config.batch_size)
        )
    history.wall_time = time.perf_counter() - started
    return history


def cross_entropy_loss() -> BatchLoss:
    """Plain hard-label loss (Eq. 1) — used by normal/passive retraining."""
    from repro.autograd.ops_loss import softmax_cross_entropy

    def loss(logits: Tensor, labels: np.ndarray, indices: np.ndarray) -> Tensor:
        return softmax_cross_entropy(logits, labels)

    return loss
