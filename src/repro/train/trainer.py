"""Generic fine-tuning loop shared by all retraining methods.

The paper's methods differ only in the per-batch loss (plain cross-entropy,
KD losses, alpha regularization) and in the backward behaviour of the
quantized layers (STE vs gradient estimation, configured on the layers
themselves). The trainer is agnostic to all of that: it takes a
``batch_loss(logits, labels, indices) -> Tensor`` closure and handles
batching, augmentation, the optimizer, the LR schedule and history
recording.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.autograd.tensor import Tensor
from repro.data.dataloader import augment_batch
from repro.data.synthetic_cifar import Dataset
from repro.errors import ConfigError
from repro.nn.module import Module
from repro.obs import events as obs_events
from repro.sim.proxsim import evaluate_accuracy
from repro.train.lr_schedule import LRSchedule, StepDecay
from repro.train.optim import SGD
from repro.utils.rng import new_rng

BatchLoss = Callable[[Tensor, np.ndarray, np.ndarray], Tensor]


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters of one fine-tuning run.

    Defaults mirror the paper's fine-tuning setup (section IV-B): minibatch
    128, SGD momentum, step decay 0.1 every 15 epochs.
    """

    epochs: int = 30
    batch_size: int = 128
    lr: float = 1e-2
    momentum: float = 0.9
    weight_decay: float = 0.0
    lr_decay: float = 0.1
    lr_decay_every: int = 15
    grad_clip: float | None = None
    augment: bool = False
    seed: int = 0
    eval_every: int = 1
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ConfigError(f"epochs must be >= 0, got {self.epochs}")

    def make_schedule(self) -> LRSchedule:
        return StepDecay(self.lr, self.lr_decay, self.lr_decay_every)


@dataclass
class History:
    """Per-epoch training record.

    ``epoch_time`` holds the wall seconds of each individual epoch
    (training batches plus that epoch's evaluation, if any); ``wall_time``
    remains the total of the whole run for backwards compatibility.
    """

    train_loss: list[float] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)
    learning_rate: list[float] = field(default_factory=list)
    epoch_time: list[float] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def final_accuracy(self) -> float:
        if not self.test_accuracy:
            raise ConfigError("no evaluations recorded")
        return self.test_accuracy[-1]

    @property
    def best_accuracy(self) -> float:
        if not self.test_accuracy:
            raise ConfigError("no evaluations recorded")
        return max(self.test_accuracy)


def train_model(
    model: Module,
    data: Dataset,
    batch_loss: BatchLoss,
    config: TrainConfig,
    callbacks: list | None = None,
) -> History:
    """Run the fine-tuning loop and return its :class:`History`.

    ``callbacks`` (see :mod:`repro.train.callbacks`) are invoked after each
    evaluated epoch; any callback returning True stops training early.
    """
    rng = new_rng(config.seed)
    optimizer = SGD(
        model.parameters(),
        lr=config.lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
        grad_clip=config.grad_clip,
    )
    schedule = config.make_schedule()
    history = History()
    started = time.perf_counter()

    log = obs_events.get_event_log()
    n = len(data.train_x)
    for epoch in range(config.epochs):
        epoch_started = time.perf_counter()
        lr = schedule.apply(optimizer, epoch)
        model.train()
        order = rng.permutation(n)
        epoch_loss, batches = 0.0, 0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            xb = data.train_x[idx]
            if config.augment:
                xb = augment_batch(xb, rng)
            yb = data.train_y[idx]
            optimizer.zero_grad()
            logits = model(Tensor(xb))
            loss = batch_loss(logits, yb, idx)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        history.train_loss.append(epoch_loss / max(batches, 1))
        history.learning_rate.append(lr)
        acc = None
        if (epoch + 1) % config.eval_every == 0 or epoch == config.epochs - 1:
            acc = evaluate_accuracy(model, data.test_x, data.test_y, config.batch_size)
            history.test_accuracy.append(acc)
        history.epoch_time.append(time.perf_counter() - epoch_started)
        if log.enabled:
            log.epoch(
                epoch=epoch + 1,
                epochs=config.epochs,
                loss=history.train_loss[-1],
                lr=lr,
                accuracy=acc,
                epoch_time=history.epoch_time[-1],
            )
        if acc is not None:
            if config.verbose:
                print(
                    f"epoch {epoch + 1:3d}/{config.epochs}  lr={lr:.2e}  "
                    f"loss={history.train_loss[-1]:.4f}  acc={acc:.4f}"
                )
            if callbacks and any(
                cb.on_epoch_end(epoch, history, model) for cb in callbacks
            ):
                break
    if not history.test_accuracy and config.epochs == 0:
        history.test_accuracy.append(
            evaluate_accuracy(model, data.test_x, data.test_y, config.batch_size)
        )
    history.wall_time = time.perf_counter() - started
    return history


def cross_entropy_loss() -> BatchLoss:
    """Plain hard-label loss (Eq. 1) — used by normal/passive retraining."""
    from repro.autograd.ops_loss import softmax_cross_entropy

    def loss(logits: Tensor, labels: np.ndarray, indices: np.ndarray) -> Tensor:
        return softmax_cross_entropy(logits, labels)

    return loss
