"""Optimizers, schedules, the fine-tuning loop and baseline methods."""

from repro.train.baselines import alpha_regularization_loss, remove_alpha_regularization
from repro.train.callbacks import (
    BestWeightsKeeper,
    Callback,
    EarlyStopping,
    TelemetryCallback,
)
from repro.train.lr_schedule import ConstantLR, CosineDecay, LRSchedule, StepDecay
from repro.train.metrics import confusion_matrix, top1_accuracy, topk_accuracy
from repro.train.optim import SGD, Adam, Optimizer, clip_grad_norm, global_grad_norm
from repro.train.robustness import noisy_weight_training
from repro.train.trainer import (
    BatchLoss,
    History,
    TrainConfig,
    cross_entropy_loss,
    history_from_dict,
    history_to_dict,
    train_model,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "global_grad_norm",
    "noisy_weight_training",
    "Callback",
    "EarlyStopping",
    "BestWeightsKeeper",
    "TelemetryCallback",
    "LRSchedule",
    "ConstantLR",
    "StepDecay",
    "CosineDecay",
    "top1_accuracy",
    "topk_accuracy",
    "confusion_matrix",
    "TrainConfig",
    "History",
    "BatchLoss",
    "train_model",
    "cross_entropy_loss",
    "history_to_dict",
    "history_from_dict",
    "alpha_regularization_loss",
    "remove_alpha_regularization",
]
