"""Classification metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def top1_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of samples whose argmax prediction matches the label."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2 or logits.shape[0] != labels.shape[0]:
        raise ShapeError(f"logits {logits.shape} incompatible with labels {labels.shape}")
    return float((logits.argmax(axis=1) == labels).mean())


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose label is among the top-k predictions."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if k < 1 or k > logits.shape[1]:
        raise ShapeError(f"k={k} out of range for {logits.shape[1]} classes")
    topk = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    return float((topk == labels[:, None]).any(axis=1).mean())


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """``cm[i, j]`` = count of samples with true class i predicted as j."""
    cm = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(cm, (np.asarray(labels), np.asarray(predictions)), 1)
    return cm
