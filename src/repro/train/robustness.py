"""Active retraining for approximation robustness (AxTrain [4], active mode).

The paper's "normal" baseline is AxTrain's *passive* retraining (train with
the approximate hardware in the loop). AxTrain additionally proposes an
*active* mode that improves robustness by steering weights toward
noise-insensitive regions. We reproduce that idea as noisy-weight
fine-tuning: each minibatch is evaluated at a randomly perturbed weight
point ``w·(1 + ε)``, ``ε ~ N(0, σ²)``, and the resulting gradient is applied
to the clean weights — descending the noise-smoothed loss surface, which
flattens minima and increases tolerance to multiplicative multiplier error.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.data.synthetic_cifar import Dataset
from repro.errors import ConfigError
from repro.nn.module import Module
from repro.sim.proxsim import evaluate_accuracy
from repro.train.optim import SGD
from repro.train.trainer import BatchLoss, History, TrainConfig
from repro.utils.rng import new_rng


def noisy_weight_training(
    model: Module,
    data: Dataset,
    batch_loss: BatchLoss,
    config: TrainConfig,
    noise_sigma: float = 0.05,
) -> History:
    """Fine-tune ``model`` on the noise-smoothed loss surface.

    Identical to :func:`repro.train.trainer.train_model` except that each
    forward/backward pass runs at multiplicatively perturbed weights; the
    update is applied to the unperturbed weights.
    """
    if noise_sigma < 0:
        raise ConfigError(f"noise_sigma must be >= 0, got {noise_sigma}")
    rng = new_rng(config.seed)
    params = model.parameters()
    optimizer = SGD(params, lr=config.lr, momentum=config.momentum,
                    weight_decay=config.weight_decay, grad_clip=config.grad_clip)
    schedule = config.make_schedule()
    history = History()

    n = len(data.train_x)
    for epoch in range(config.epochs):
        lr = schedule.apply(optimizer, epoch)
        model.train()
        order = rng.permutation(n)
        epoch_loss, batches = 0.0, 0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            optimizer.zero_grad()
            # Perturb, evaluate, restore.
            clean = [p.data for p in params]
            for p in params:
                noise = rng.normal(0.0, noise_sigma, size=p.data.shape).astype(p.data.dtype)
                p.data = p.data * (1.0 + noise)
            logits = model(Tensor(data.train_x[idx]))
            loss = batch_loss(logits, data.train_y[idx], idx)
            loss.backward()
            for p, original in zip(params, clean):
                p.data = original
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        history.train_loss.append(epoch_loss / max(batches, 1))
        history.learning_rate.append(lr)
        if (epoch + 1) % config.eval_every == 0 or epoch == config.epochs - 1:
            history.test_accuracy.append(
                evaluate_accuracy(model, data.test_x, data.test_y, config.batch_size)
            )
    if not history.test_accuracy:
        history.test_accuracy.append(
            evaluate_accuracy(model, data.test_x, data.test_y, config.batch_size)
        )
    return history
