"""Classic CNN baselines: LeNet-5 and a small VGG.

These are not evaluated in the paper but round out the model zoo for
library users: LeNet-style networks are the canonical quick-experiment
target, and VGG-style plain stacks (no residuals, no BN in the LeNet case)
exercise the quantization/approximation pipeline on architectures without
skip connections.
"""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from repro.utils.rng import spawn_rngs


class LeNet5(Module):
    """LeNet-5 with ReLU activations, adapted to configurable input size.

    The classifier head is sized from ``input_size`` (must be divisible by
    4 after the two 2x stride reductions).
    """

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        input_size: int = 32,
        rng=None,
    ):
        super().__init__()
        self.num_classes = num_classes
        r1, r2, r3, r4, r5 = spawn_rngs(rng, 5)
        # conv1 (same) -> pool -> conv2 (valid 5x5) -> pool
        final_spatial = ((input_size // 2) - 4) // 2
        if final_spatial < 1:
            raise ValueError(f"input_size {input_size} too small for LeNet5")
        self.features = Sequential(
            Conv2d(in_channels, 6, 5, padding=2, rng=r1),
            ReLU(),
            AvgPool2d(2),
            Conv2d(6, 16, 5, padding=0, rng=r2),
            ReLU(),
            AvgPool2d(2),
        )
        self.flatten = Flatten()
        flat = 16 * final_spatial**2
        self.classifier = Sequential(
            Linear(flat, 120, rng=r3),
            ReLU(),
            Linear(120, 84, rng=r4),
            ReLU(),
            Linear(84, num_classes, rng=r5),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.flatten(self.features(x)))


class VGGSmall(Module):
    """A compact VGG-style plain stack: (conv-BN-ReLU)x2 + pool, 3 stages."""

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        base_width: int = 16,
        rng=None,
    ):
        super().__init__()
        self.num_classes = num_classes
        rngs = iter(spawn_rngs(rng, 7))
        w = base_width
        layers: list[Module] = []
        channels = in_channels
        for stage_width in (w, 2 * w, 4 * w):
            for _ in range(2):
                layers.extend(
                    [
                        Conv2d(channels, stage_width, 3, padding=1, bias=False, rng=next(rngs)),
                        BatchNorm2d(stage_width),
                        ReLU(),
                    ]
                )
                channels = stage_width
            layers.append(MaxPool2d(2))
        self.features = Sequential(*layers)
        self.pool = GlobalAvgPool()
        self.classifier = Linear(channels, num_classes, rng=next(rngs))

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.pool(self.features(x)))


def lenet5(num_classes: int = 10, input_size: int = 32, rng=None, **kwargs) -> LeNet5:
    return LeNet5(num_classes=num_classes, input_size=input_size, rng=rng, **kwargs)


def vggsmall(num_classes: int = 10, base_width: int = 16, rng=None, **kwargs) -> VGGSmall:
    return VGGSmall(num_classes=num_classes, base_width=base_width, rng=rng, **kwargs)
