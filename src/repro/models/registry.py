"""Name-based model factory used by experiment configs."""

from __future__ import annotations

from repro.models.classic import lenet5, vggsmall
from repro.models.mobilenetv2 import mobilenetv2
from repro.models.resnet import resnet20, resnet32
from repro.models.simplecnn import simplecnn
from repro.nn.module import Module
from repro.utils.registry import Registry

MODELS: Registry[Module] = Registry("model")
MODELS.register("resnet20", resnet20)
MODELS.register("resnet32", resnet32)
MODELS.register("mobilenetv2", mobilenetv2)
MODELS.register("simplecnn", simplecnn)
MODELS.register("lenet5", lenet5)
MODELS.register("vggsmall", vggsmall)


def create_model(name: str, /, **kwargs) -> Module:
    """Instantiate a model by name (``resnet20``, ``resnet32``,
    ``mobilenetv2``, ``simplecnn``, ``lenet5`` or ``vggsmall``)."""
    return MODELS.create(name, **kwargs)
