"""Model zoo: CIFAR ResNets, MobileNetV2, classic baselines and test CNNs."""

from repro.models.classic import LeNet5, VGGSmall, lenet5, vggsmall
from repro.models.mobilenetv2 import MobileNetV2, mobilenetv2
from repro.models.registry import MODELS, create_model
from repro.models.resnet import BasicBlock, ResNetCifar, resnet20, resnet32
from repro.models.simplecnn import SimpleCNN, TinyMLP, simplecnn

__all__ = [
    "MODELS",
    "create_model",
    "ResNetCifar",
    "BasicBlock",
    "resnet20",
    "resnet32",
    "MobileNetV2",
    "mobilenetv2",
    "SimpleCNN",
    "TinyMLP",
    "simplecnn",
    "LeNet5",
    "lenet5",
    "VGGSmall",
    "vggsmall",
]
