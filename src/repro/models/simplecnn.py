"""Small CNNs for fast unit tests and quick demos."""

from __future__ import annotations

from repro.autograd.tensor import Tensor
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from repro.utils.rng import spawn_rngs


class SimpleCNN(Module):
    """Three conv blocks + linear head; trains to high accuracy on the
    synthetic dataset in a few epochs and keeps unit tests fast."""

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        base_width: int = 8,
        rng=None,
    ):
        super().__init__()
        self.num_classes = num_classes
        r1, r2, r3, r4 = spawn_rngs(rng, 4)
        w = base_width
        self.features = Sequential(
            Conv2d(in_channels, w, 3, 1, 1, bias=True, rng=r1),
            BatchNorm2d(w),
            ReLU(),
            MaxPool2d(2),
            Conv2d(w, 2 * w, 3, 1, 1, bias=True, rng=r2),
            BatchNorm2d(2 * w),
            ReLU(),
            MaxPool2d(2),
            Conv2d(2 * w, 4 * w, 3, 1, 1, bias=True, rng=r3),
            ReLU(),
        )
        self.pool = GlobalAvgPool()
        self.classifier = Linear(4 * w, num_classes, rng=r4)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.pool(self.features(x)))


class TinyMLP(Module):
    """Two-layer MLP over flattened input; the smallest trainable model."""

    def __init__(self, in_features: int, hidden: int = 32, num_classes: int = 10, rng=None):
        super().__init__()
        r1, r2 = spawn_rngs(rng, 2)
        self.net = Sequential(
            Flatten(),
            Linear(in_features, hidden, rng=r1),
            ReLU(),
            Linear(hidden, num_classes, rng=r2),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


def simplecnn(num_classes: int = 10, base_width: int = 8, rng=None, **kwargs) -> SimpleCNN:
    return SimpleCNN(num_classes=num_classes, base_width=base_width, rng=rng, **kwargs)
