"""MobileNetV2 (Sandler et al., CVPR'18) adapted for 32x32 CIFAR inputs.

Inverted residual blocks with linear bottlenecks and ReLU6, following the
standard CIFAR adaptation: the stem stride is 1 and the first downsampling
stage is deferred, keeping spatial resolution at small input sizes.
``width_mult`` scales all channel counts for CPU-scale benchmarking.
"""

from __future__ import annotations

from repro.autograd import ops_activation, ops_basic
from repro.autograd.tensor import Tensor
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool,
    Linear,
    Module,
    Sequential,
)
from repro.utils.rng import spawn_rngs

# (expansion t, output channels c, repeats n, first stride s).
# Strides follow the CIFAR adaptation that reproduces the paper's Table I
# MAC count (0.296 GMACs at 32x32): the stem and the first three stages run
# at full resolution; downsampling happens at the 64- and 160-channel stages.
CIFAR_INVERTED_RESIDUAL_CONFIG: tuple[tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 1),
    (6, 32, 3, 1),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def _make_divisible(value: float, divisor: int = 8, min_value: int | None = None) -> int:
    """Round channel counts like the reference implementation does."""
    if min_value is None:
        min_value = divisor
    new_value = max(min_value, int(value + divisor / 2) // divisor * divisor)
    if new_value < 0.9 * value:  # never round down by more than 10%
        new_value += divisor
    return new_value


class ConvBNReLU6(Module):
    def __init__(self, in_ch: int, out_ch: int, kernel: int, stride: int, groups: int = 1, rng=None):
        super().__init__()
        padding = (kernel - 1) // 2
        self.conv = Conv2d(in_ch, out_ch, kernel, stride, padding, groups, bias=False, rng=rng)
        self.bn = BatchNorm2d(out_ch)

    def forward(self, x: Tensor) -> Tensor:
        return ops_activation.relu6(self.bn(self.conv(x)))


class InvertedResidual(Module):
    """Expansion (1x1) → depthwise (3x3) → linear projection (1x1)."""

    def __init__(self, in_ch: int, out_ch: int, stride: int, expand_ratio: int, rng=None):
        super().__init__()
        r1, r2, r3 = spawn_rngs(rng, 3)
        hidden = in_ch * expand_ratio
        self.use_residual = stride == 1 and in_ch == out_ch
        layers: list[Module] = []
        if expand_ratio != 1:
            layers.append(ConvBNReLU6(in_ch, hidden, 1, 1, rng=r1))
        layers.append(ConvBNReLU6(hidden, hidden, 3, stride, groups=hidden, rng=r2))
        self.features = Sequential(*layers)
        self.project = Conv2d(hidden, out_ch, 1, 1, 0, bias=False, rng=r3)
        self.project_bn = BatchNorm2d(out_ch)

    def forward(self, x: Tensor) -> Tensor:
        out = self.project_bn(self.project(self.features(x)))
        if self.use_residual:
            out = ops_basic.add(out, x)
        return out


class MobileNetV2(Module):
    """MobileNetV2 for small (CIFAR-like) images."""

    def __init__(
        self,
        num_classes: int = 10,
        width_mult: float = 1.0,
        in_channels: int = 3,
        inverted_residual_config=CIFAR_INVERTED_RESIDUAL_CONFIG,
        rng=None,
    ):
        super().__init__()
        self.num_classes = num_classes
        self.width_mult = width_mult
        total_blocks = sum(n for _, _, n, _ in inverted_residual_config)
        rngs = spawn_rngs(rng, total_blocks + 3)
        rng_iter = iter(rngs)

        stem_ch = _make_divisible(32 * width_mult)
        # The reference keeps the 1280-wide head for width_mult < 1; we scale
        # it too so CPU-scale benches stay cheap (documented in DESIGN.md).
        last_ch = _make_divisible(1280 * width_mult)
        self.stem = ConvBNReLU6(in_channels, stem_ch, 3, 1, rng=next(rng_iter))

        blocks: list[Module] = []
        channels = stem_ch
        for t, c, n, s in inverted_residual_config:
            out_ch = _make_divisible(c * width_mult)
            for i in range(n):
                stride = s if i == 0 else 1
                blocks.append(InvertedResidual(channels, out_ch, stride, t, rng=next(rng_iter)))
                channels = out_ch
        self.blocks = Sequential(*blocks)

        self.head = ConvBNReLU6(channels, last_ch, 1, 1, rng=next(rng_iter))
        self.pool = GlobalAvgPool()
        self.classifier = Linear(last_ch, num_classes, rng=next(rng_iter))

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        out = self.blocks(out)
        out = self.head(out)
        out = self.pool(out)
        return self.classifier(out)


def mobilenetv2(num_classes: int = 10, width_mult: float = 1.0, rng=None, **kwargs) -> MobileNetV2:
    """MobileNetV2 for CIFAR-sized inputs."""
    return MobileNetV2(num_classes, width_mult, rng=rng, **kwargs)
