"""CIFAR-style ResNets (He et al., CVPR'16) — ResNet20 and ResNet32.

The architecture follows the original CIFAR10 design: a 3x3 stem to 16
channels, three stages of ``n`` basic blocks at 16/32/64 channels (ResNet20
has n=3, ResNet32 has n=5), global average pooling and a linear classifier.
A ``width_mult`` knob scales all channel counts so the benchmark harness can
run the same topology at CPU-friendly sizes.
"""

from __future__ import annotations

from repro.autograd import ops_activation, ops_basic
from repro.autograd.tensor import Tensor
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool,
    Identity,
    Linear,
    Module,
    ReLU,
    Sequential,
)
from repro.utils.rng import spawn_rngs


def _scaled(channels: int, width_mult: float) -> int:
    return max(4, int(round(channels * width_mult)))


class BasicBlock(Module):
    """Two 3x3 conv-BN pairs with an additive shortcut."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1, rng=None):
        super().__init__()
        r1, r2, r3 = spawn_rngs(rng, 3)
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride, 1, bias=False, rng=r1)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, 1, 1, bias=False, rng=r2)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride, 0, bias=False, rng=r3),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = ops_activation.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        out = ops_basic.add(out, self.shortcut(x))
        return ops_activation.relu(out)


class ResNetCifar(Module):
    """CIFAR ResNet with ``6n + 2`` layers."""

    def __init__(
        self,
        num_blocks_per_stage: int,
        num_classes: int = 10,
        width_mult: float = 1.0,
        in_channels: int = 3,
        rng=None,
    ):
        super().__init__()
        self.num_classes = num_classes
        self.width_mult = width_mult
        widths = [_scaled(c, width_mult) for c in (16, 32, 64)]
        rngs = spawn_rngs(rng, 3 * num_blocks_per_stage + 2)
        rng_iter = iter(rngs)

        self.stem = Conv2d(in_channels, widths[0], 3, 1, 1, bias=False, rng=next(rng_iter))
        self.stem_bn = BatchNorm2d(widths[0])

        stages = []
        channels = widths[0]
        for stage_index, width in enumerate(widths):
            blocks = []
            for block_index in range(num_blocks_per_stage):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                blocks.append(BasicBlock(channels, width, stride, rng=next(rng_iter)))
                channels = width
            stages.append(Sequential(*blocks))
        self.stage1, self.stage2, self.stage3 = stages

        self.pool = GlobalAvgPool()
        self.classifier = Linear(channels, num_classes, rng=next(rng_iter))

    def forward(self, x: Tensor) -> Tensor:
        out = ops_activation.relu(self.stem_bn(self.stem(x)))
        out = self.stage1(out)
        out = self.stage2(out)
        out = self.stage3(out)
        out = self.pool(out)
        return self.classifier(out)


def resnet20(num_classes: int = 10, width_mult: float = 1.0, rng=None, **kwargs) -> ResNetCifar:
    """ResNet20 (3 blocks per stage)."""
    return ResNetCifar(3, num_classes, width_mult, rng=rng, **kwargs)


def resnet32(num_classes: int = 10, width_mult: float = 1.0, rng=None, **kwargs) -> ResNetCifar:
    """ResNet32 (5 blocks per stage)."""
    return ResNetCifar(5, num_classes, width_mult, rng=rng, **kwargs)
