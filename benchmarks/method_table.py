"""Shared runner for the method-comparison tables (paper Tables V-VII).

Reproduces the paper's experimental protocol:

- Fine-tune only multipliers whose initial accuracy degradation exceeds 1%
  w.r.t. the reference (exact-execution) accuracy; mild multipliers are
  reported with their initial accuracy only, like the "-" rows in Table V.
- For unbiased (EvoApprox) multipliers the fitted error model is constant,
  so GE is *identical* to the STE: the ``ge`` and ``approxkd_ge`` columns
  reuse the ``normal`` and ``approxkd`` runs — exactly the equality noted in
  section IV-B ("fine-tuning with ApproxKD and ApproxKD+GE delivers the same
  results").
- Temperatures follow the Table III policy (``recommended_t2`` on the
  measured MRE), optionally shifted (+1 tier) for MobileNetV2 as in the
  paper's Table VII setup.
- The fine-tuning learning rate adapts to the severity of the initial
  degradation, mirroring the paper's per-scenario choice between 1e-4 and
  1e-5: recovering from a collapse uses the preset rate, while multipliers
  that start close to the reference accuracy fine-tune gently so the short
  smoke-scale budget cannot destroy an already-good model
  (:func:`adaptive_train_config`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.approx import get_multiplier, mean_relative_error, paper_mre
from repro.data.synthetic_cifar import Dataset
from repro.distill import recommended_t2
from repro.ge import estimate_error_model
from repro.nn.module import Module
from repro.pipeline import approximation_stage
from repro.sim import approximate_execution, evaluate_accuracy
from repro.train import TrainConfig

DEGRADATION_THRESHOLD = 0.01  # paper: fine-tune if degradation > 1%
# Initial degradation below which fine-tuning switches to the gentle rate
# (the paper's 1e-5 tier vs its 1e-4 tier).
GENTLE_LR_THRESHOLD = 0.30
GENTLE_LR_FACTOR = 0.2


def adaptive_train_config(
    train_config: TrainConfig,
    initial_accuracy: float,
    reference_accuracy: float,
) -> TrainConfig:
    """Pick the fine-tuning rate from the severity of the degradation.

    Mirrors the paper's per-scenario learning-rate choice: collapsed models
    need the full rate to recover within the budget; mildly degraded models
    fine-tune at a fraction of it so short runs cannot regress them.
    """
    if reference_accuracy - initial_accuracy >= GENTLE_LR_THRESHOLD:
        return train_config
    return replace(train_config, lr=train_config.lr * GENTLE_LR_FACTOR)


@dataclass
class MethodTableRow:
    """One multiplier's row in a Table V-style comparison."""

    multiplier: str
    mre: float
    paper_mre: float | None
    savings: float
    initial_accuracy: float
    fine_tuned: bool
    final: dict[str, float] = field(default_factory=dict)
    ge_equals_normal: bool = False


def run_method_table(
    quant_model: Module,
    dataset: Dataset,
    multipliers: list[str],
    methods: tuple[str, ...],
    train_config: TrainConfig,
    temperature_shift: float = 0.0,
    rng: int = 0,
) -> list[MethodTableRow]:
    """Run the approximation-stage comparison for every multiplier."""
    reference_acc = evaluate_accuracy(quant_model, dataset.test_x, dataset.test_y)
    rows = []
    for name in multipliers:
        mult = get_multiplier(name)
        mre = mean_relative_error(mult)
        with approximate_execution(quant_model, mult):
            initial = evaluate_accuracy(quant_model, dataset.test_x, dataset.test_y)
        row = MethodTableRow(
            multiplier=name,
            mre=mre,
            paper_mre=paper_mre(name),
            savings=mult.energy_savings,
            initial_accuracy=initial,
            fine_tuned=initial < reference_acc - DEGRADATION_THRESHOLD,
        )
        if row.fine_tuned:
            temperature = _shift_temperature(recommended_t2(mre), temperature_shift)
            ge_is_ste = estimate_error_model(mult, rng=rng).is_constant
            row.ge_equals_normal = ge_is_ste
            config = adaptive_train_config(train_config, initial, reference_acc)
            for method in methods:
                source = _reuse_source(method, ge_is_ste)
                if source is not None and source in row.final:
                    row.final[method] = row.final[source]
                    continue
                _, result = approximation_stage(
                    quant_model,
                    dataset,
                    mult,
                    method=method,
                    train_config=config,
                    temperature=temperature,
                    rng=rng,
                )
                row.final[method] = result.accuracy_after
        rows.append(row)
    return rows


def _shift_temperature(temperature: float, shift: float) -> float:
    """Shift within the paper's temperature grid (used for Table VII's
    "increase T2 by one tier" rule)."""
    if shift == 0.0:
        return temperature
    grid = [1.0, 2.0, 5.0, 10.0]
    index = min(len(grid) - 1, grid.index(temperature) + int(shift))
    return grid[index]


def _reuse_source(method: str, ge_is_ste: bool) -> str | None:
    """When GE degenerates to STE, GE-methods are identical reruns."""
    if not ge_is_ste:
        return None
    if method == "ge":
        return "normal"
    if method == "approxkd_ge":
        return "approxkd"
    return None


def format_rows(rows: list[MethodTableRow], methods: tuple[str, ...]) -> list[list[str]]:
    """Render rows for :func:`benchmarks.conftest.print_table`."""
    out = []
    for row in rows:
        cells = [
            row.multiplier,
            f"{100 * row.mre:.1f}",
            f"{100 * (row.paper_mre or 0):.1f}",
            f"{100 * row.savings:.0f}",
            f"{100 * row.initial_accuracy:.2f}",
        ]
        for method in methods:
            if not row.fine_tuned:
                cells.append("-")
            elif method in ("ge", "approxkd_ge") and row.ge_equals_normal:
                cells.append(f"{100 * row.final[method]:.2f}*")
            else:
                cells.append(f"{100 * row.final.get(method, float('nan')):.2f}")
        out.append(cells)
    return out


def table_headers(methods: tuple[str, ...]) -> list[str]:
    return [
        "Multiplier",
        "MRE[%]",
        "paperMRE[%]",
        "Sav[%]",
        "Initial[%]",
        *[f"Final {m}" for m in methods],
    ]
