"""Ablation — two-stage (ApproxKD) vs single-stage knowledge distillation.

The paper motivates ApproxKD by arguing that distilling the FP teacher
*directly* into the approximate model accumulates quantization and
approximation error and compensates worse than the two-stage scheme
(FP → quantized at T1, then quantized → approximate at T2).

This ablation starts from the same FP model and compares, for an aggressive
multiplier:

1. two-stage: quantization stage with KD, then approximation stage with KD
   from the quantized teacher;
2. single-stage: quantize + calibrate (no quantization-stage fine-tuning),
   then distill the FP teacher directly into the approximate model.
"""

import pytest

from benchmarks.conftest import print_table
from repro.data.dataloader import iterate_batches
from repro.distill import clone_model, kd_batch_loss, precompute_teacher_logits
from repro.pipeline import approximation_stage
from repro.quant import calibrate_model, quantize_model
from repro.sim import attach_multiplier, evaluate_accuracy
from repro.train import train_model

MULTIPLIER = "truncated5"


@pytest.mark.benchmark(group="ablation")
def test_ablation_single_vs_two_stage_kd(
    benchmark, fp_resnet20, quant_resnet20, bench_dataset, approx_train_config
):
    def run():
        # Two-stage: reuse the session's KD-fine-tuned quantized model.
        _, two_stage = approximation_stage(
            quant_resnet20,
            bench_dataset,
            MULTIPLIER,
            method="approxkd",
            train_config=approx_train_config,
            temperature=5.0,
        )

        # Single-stage: calibrated (but not KD-fine-tuned) quantized model,
        # distilled directly from the FP teacher under approximation.
        student = quantize_model(clone_model(fp_resnet20))
        calibrate_model(
            student,
            iterate_batches(
                bench_dataset.train_x,
                bench_dataset.train_y,
                approx_train_config.batch_size,
                shuffle=False,
            ),
            max_batches=4,
        )
        attach_multiplier(student, MULTIPLIER)
        before = evaluate_accuracy(student, bench_dataset.test_x, bench_dataset.test_y)
        teacher_logits = precompute_teacher_logits(
            fp_resnet20, bench_dataset.train_x, approx_train_config.batch_size
        )
        train_model(
            student,
            bench_dataset,
            kd_batch_loss(teacher_logits, temperature=5.0),
            approx_train_config,
        )
        single_after = evaluate_accuracy(
            student, bench_dataset.test_x, bench_dataset.test_y
        )
        return two_stage, (before, single_after)

    two_stage, (single_before, single_after) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        "Ablation: single-stage vs two-stage KD (ResNet20, truncated-5)",
        ["Scheme", "Initial[%]", "Final[%]"],
        [
            ["two-stage (ApproxKD)", 100 * two_stage.accuracy_before, 100 * two_stage.accuracy_after],
            ["single-stage (FP→approx)", 100 * single_before, 100 * single_after],
        ],
    )

    # Shape criterion: two-stage at least matches single-stage distillation
    # (generous margin — both runs are only tens of SGD steps at smoke
    # scale; the paper's clear separation needs the full budget).
    assert two_stage.accuracy_after >= single_after - 0.10
