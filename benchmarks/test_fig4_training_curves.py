"""Fig. 4 — fine-tuning accuracy vs epoch, ResNet20 + truncated-5.

The paper plots all five methods over 30 epochs and observes:

- ApproxKD+GE and ApproxKD have the best accuracy from the first epoch,
- followed by GE,
- alpha behaves like normal fine-tuning after the first few epochs.

This benchmark trains all five methods with per-epoch evaluation, prints
the accuracy series, and asserts the ordering on the curves' means.
"""

import numpy as np
import pytest

from benchmarks.conftest import becho

from repro.pipeline import METHODS, approximation_stage


@pytest.mark.benchmark(group="fig4")
def test_fig4_training_curves(
    benchmark, quant_resnet20, bench_dataset, approx_train_config
):
    def run():
        curves = {}
        for method in METHODS:
            _, result = approximation_stage(
                quant_resnet20,
                bench_dataset,
                "truncated5",
                method=method,
                train_config=approx_train_config,
                temperature=5.0,
            )
            curves[method] = [result.accuracy_before] + result.history.test_accuracy
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    becho("\n=== Fig. 4: accuracy vs epoch (ResNet20, truncated-5) ===")
    epochs = len(next(iter(curves.values())))
    header = "epoch:      " + "  ".join(f"{e:5d}" for e in range(epochs))
    becho(header)
    for method, series in curves.items():
        becho(f"{method:12s}" + "  ".join(f"{100 * a:5.1f}" for a in series))

    # Shape criteria -------------------------------------------------------
    # At smoke scale the per-epoch curves are noisy (tens of SGD steps per
    # epoch vs the paper's ~400), so the criteria compare the proposed
    # methods as a group against the baselines on final accuracy.
    final = {m: curve[-1] for m, curve in curves.items()}
    proposed = max(final["ge"], final["approxkd"], final["approxkd_ge"])
    baseline = max(final["normal"], final["alpha"])
    assert proposed >= baseline - 0.05
    # Every curve must end at or above its starting (pre-FT) accuracy.
    for method, series in curves.items():
        assert series[-1] >= series[0] - 0.02, method
    # All methods actually train (final above random guessing).
    assert min(final.values()) > 0.15
