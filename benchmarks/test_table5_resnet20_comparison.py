"""Table V — comparison of retraining methods on approximate ResNet20.

Paper columns: Normal [4], GE, alpha [5], ApproxKD, ApproxKD+GE for
truncated 1-5 and EvoApprox 470/29/228/249. Headline shape criteria:

- ApproxKD+GE is the best (or tied-best) method for the large majority of
  multipliers; "the combination of both always delivers the best results".
- GE alone beats normal fine-tuning on biased (truncated) multipliers.
- For EvoApprox multipliers GE == normal and ApproxKD+GE == ApproxKD
  (constant error model, section IV-B).
- EvoApprox 249 (48.8% MRE) stays at random guessing for every method.
- truncated-1 causes <1% degradation and is not fine-tuned (the paper's "-"
  row).
"""

import pytest

from benchmarks.conftest import becho, print_table
from benchmarks.method_table import format_rows, run_method_table, table_headers
from repro.approx import TABLE5_MULTIPLIERS
from repro.pipeline import METHODS


@pytest.mark.benchmark(group="table5")
def test_table5_method_comparison_resnet20(
    benchmark, quant_resnet20, bench_dataset, approx_train_config, preset
):
    rows = benchmark.pedantic(
        lambda: run_method_table(
            quant_resnet20,
            bench_dataset,
            TABLE5_MULTIPLIERS,
            METHODS,
            approx_train_config,
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        f"Table V: retraining methods, approximate ResNet20 ({preset.name})",
        table_headers(METHODS),
        format_rows(rows, METHODS),
    )
    becho("(*) GE column reuses the STE run: constant error model (section IV-B)")

    by_name = {row.multiplier: row for row in rows}

    # EvoApprox 249 only does random guessing, before and after optimization.
    row249 = by_name["evoapprox249"]
    assert row249.initial_accuracy < 0.45
    if row249.fine_tuned:
        assert max(row249.final.values()) < 0.45

    # GE == normal and ApproxKD+GE == ApproxKD for unbiased multipliers.
    for name in ("evoapprox470", "evoapprox29", "evoapprox228"):
        row = by_name[name]
        if row.fine_tuned:
            assert row.ge_equals_normal
            assert row.final["ge"] == row.final["normal"]
            assert row.final["approxkd_ge"] == row.final["approxkd"]

    # The proposed combination wins (or ties within smoke-scale noise) on
    # most fine-tuned multipliers. The margin is wide because each run has
    # only tens of SGD steps; at the full preset it tightens naturally.
    tuned = [r for r in rows if r.fine_tuned and r.multiplier != "evoapprox249"]
    wins = sum(
        1
        for r in tuned
        if r.final["approxkd_ge"] >= max(r.final.values()) - 0.08
    )
    assert wins >= 0.5 * len(tuned), (
        f"ApproxKD+GE near-best on only {wins}/{len(tuned)} multipliers"
    )
    # Every fine-tuned multiplier recovers (best method beats initial).
    for r in tuned:
        assert max(r.final.values()) >= r.initial_accuracy - 0.02, r.multiplier

    # Final accuracy degrades with MRE among truncated multipliers.
    tr2 = by_name["truncated2"]
    tr5 = by_name["truncated5"]
    if tr2.fine_tuned and tr5.fine_tuned:
        assert max(tr2.final.values()) >= max(tr5.final.values()) - 0.10
