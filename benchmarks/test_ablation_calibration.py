"""Ablation — MinPropQE vs min-max weight-step calibration, and power-of-two
step rounding vs unconstrained steps.

The paper adopts MinPropQE [1] for step-size selection and rounds all steps
to powers of two. This ablation quantizes the same trained FP model under
each calibration policy and compares post-quantization (pre-fine-tuning)
accuracy — the quantity calibration directly controls.
"""

import pytest

from benchmarks.conftest import print_table
from repro.data.dataloader import iterate_batches
from repro.distill import clone_model
from repro.quant import QConfig, calibrate_model, quantize_model
from repro.sim import evaluate_accuracy

POLICIES = {
    "minpropqe+pow2 (paper)": QConfig(weight_observer="minpropqe", pow2_steps=True),
    "minpropqe, free steps": QConfig(weight_observer="minpropqe", pow2_steps=False),
    "minmax+pow2": QConfig(weight_observer="minmax", pow2_steps=True),
    "mse+pow2": QConfig(weight_observer="mse", pow2_steps=True),
}


@pytest.mark.benchmark(group="ablation")
def test_ablation_calibration_policies(benchmark, fp_resnet20, bench_dataset, preset):
    def run():
        accs = {}
        for label, qconfig in POLICIES.items():
            model = quantize_model(clone_model(fp_resnet20), qconfig=qconfig)
            calibrate_model(
                model,
                iterate_batches(
                    bench_dataset.train_x,
                    bench_dataset.train_y,
                    preset.batch_size,
                    shuffle=False,
                ),
                max_batches=4,
            )
            accs[label] = evaluate_accuracy(
                model, bench_dataset.test_x, bench_dataset.test_y
            )
        return accs

    accs = benchmark.pedantic(run, rounds=1, iterations=1)
    fp_acc = evaluate_accuracy(fp_resnet20, bench_dataset.test_x, bench_dataset.test_y)
    print_table(
        "Ablation: 8A4W calibration policies (ResNet20, before fine-tuning)",
        ["Policy", "Acc[%]", "FP ref[%]"],
        [[label, 100 * acc, 100 * fp_acc] for label, acc in accs.items()],
    )

    # Sanity: every policy produces a working quantized model (well above
    # chance for a 10-class task), and the paper's choice is competitive.
    for label, acc in accs.items():
        assert acc > 0.15, label
    best = max(accs.values())
    assert accs["minpropqe+pow2 (paper)"] >= best - 0.15
