"""Table II — 8A4W quantization results.

Paper (CIFAR10):

    CNN          Acc before FT   Acc after normal FT   Acc after FT w/ KD
    ResNet20     82.88           90.51                 90.60
    ResNet32     83.66           91.23                 91.29
    MobileNetV2  10.01           93.70                 93.81

Shape criteria asserted here: before-FT accuracy is clearly below the FP
accuracy (quantization hurts), fine-tuning recovers most of it, and KD
fine-tuning is at least on par with normal fine-tuning.
"""

import pytest

from benchmarks.conftest import print_table
from repro.pipeline import quantization_stage
from repro.sim import evaluate_accuracy
from repro.train import TrainConfig

PAPER_ROWS = {
    "ResNet20": (82.88, 90.51, 90.60),
    "ResNet32": (83.66, 91.23, 91.29),
    "MobileNetV2": (10.01, 93.70, 93.81),
}


@pytest.mark.benchmark(group="table2")
def test_table2_quantization_results(
    benchmark, fp_resnet20, fp_resnet32, fp_mobilenetv2, bench_dataset, preset
):
    models = {
        "ResNet20": (fp_resnet20, True),
        "ResNet32": (fp_resnet32, True),
        "MobileNetV2": (fp_mobilenetv2, False),  # paper keeps BN in MobileNetV2
    }
    config = TrainConfig(
        epochs=preset.quant_epochs,
        batch_size=preset.quant_batch_size,
        lr=preset.quant_lr,
        momentum=0.9,
        grad_clip=preset.grad_clip,
        seed=0,
    )

    def run():
        rows, stats = [], {}
        for name, (fp_model, fold_bn) in models.items():
            fp_acc = evaluate_accuracy(fp_model, bench_dataset.test_x, bench_dataset.test_y)
            _, normal = quantization_stage(
                fp_model, bench_dataset, train_config=config, use_kd=False, fold_bn=fold_bn
            )
            _, kd = quantization_stage(
                fp_model,
                bench_dataset,
                train_config=config,
                use_kd=True,
                temperature=1.0,
                fold_bn=fold_bn,
            )
            paper = PAPER_ROWS[name]
            rows.append(
                [
                    name,
                    f"{100 * kd.accuracy_before:.2f} (paper {paper[0]})",
                    f"{100 * normal.accuracy_after:.2f} (paper {paper[1]})",
                    f"{100 * kd.accuracy_after:.2f} (paper {paper[2]})",
                ]
            )
            stats[name] = (fp_acc, kd.accuracy_before, normal.accuracy_after, kd.accuracy_after)
        return rows, stats

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        f"Table II: 8A4W quantization ({preset.name} preset, T1=1)",
        ["CNN", "Acc before FT[%]", "After normal FT[%]", "After FT w/ KD[%]"],
        rows,
    )

    for name, (fp_acc, before, normal_ft, kd_ft) in stats.items():
        # Fine-tuning must not lose accuracy relative to the calibrated
        # starting point (small noise margin at smoke scale).
        assert kd_ft >= before - 0.05, name
        assert normal_ft >= before - 0.05, name
        # After FT the quantized model sits near the FP model.
        assert kd_ft >= fp_acc - 0.20, name
