"""Table VII — normal fine-tuning vs ApproxKD+GE on MobileNetV2.

The paper evaluates only the two extreme methods on MobileNetV2 (truncated
1-5, EvoApprox 470/228), keeping BN layers unfolded and raising T2 by one
grid tier because the deeper model degrades more.

Shape criteria: ApproxKD+GE matches or beats normal fine-tuning on the
majority of fine-tuned multipliers, and recovery from severe degradation
(truncated 4/5 collapse to ~10% initial accuracy in the paper) is
substantial.
"""

import pytest

from benchmarks.conftest import print_table
from benchmarks.method_table import format_rows, run_method_table, table_headers
from repro.approx import TABLE7_MULTIPLIERS

METHODS = ("normal", "approxkd_ge")


@pytest.mark.benchmark(group="table7")
def test_table7_mobilenetv2(
    benchmark, quant_mobilenetv2, bench_dataset, approx_train_config, preset
):
    rows = benchmark.pedantic(
        lambda: run_method_table(
            quant_mobilenetv2,
            bench_dataset,
            TABLE7_MULTIPLIERS,
            METHODS,
            approx_train_config,
            temperature_shift=1.0,  # paper: "we increase T2 by 1" for MobileNetV2
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        f"Table VII: approximate MobileNetV2 ({preset.name}, T2 raised one tier)",
        table_headers(METHODS),
        format_rows(rows, METHODS),
    )

    tuned = [r for r in rows if r.fine_tuned]
    if tuned:
        wins = sum(
            1 for r in tuned if r.final["approxkd_ge"] >= r.final["normal"] - 0.05
        )
        assert wins >= 0.5 * len(tuned)
        for r in tuned:
            assert max(r.final.values()) >= r.initial_accuracy - 0.02
