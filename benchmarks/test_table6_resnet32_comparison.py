"""Table VI — comparison of retraining methods on approximate ResNet32.

Same protocol and hyperparameters as Table V, on the deeper ResNet32 and
the multiplier set the paper lists for this table (truncated 1-5 and
EvoApprox 29/111/104/469/228/145). The paper observes "the same tendency of
ApproxKD+GE outperforming the other fine-tuning approaches".
"""

from dataclasses import replace

import pytest

from benchmarks.conftest import becho, print_table
from benchmarks.method_table import format_rows, run_method_table, table_headers
from repro.approx import TABLE6_MULTIPLIERS
from repro.pipeline import METHODS


@pytest.mark.benchmark(group="table6")
def test_table6_method_comparison_resnet32(
    benchmark, quant_resnet32, bench_dataset, approx_train_config, preset
):
    # ResNet32 runs ~1.6x slower per step than ResNet20; a slightly larger
    # batch keeps this table's wall time in line with Table V at smoke scale.
    config = (
        replace(approx_train_config, batch_size=24)
        if preset.name == "smoke"
        else approx_train_config
    )
    rows = benchmark.pedantic(
        lambda: run_method_table(
            quant_resnet32,
            bench_dataset,
            TABLE6_MULTIPLIERS,
            METHODS,
            config,
        ),
        rounds=1,
        iterations=1,
    )
    print_table(
        f"Table VI: retraining methods, approximate ResNet32 ({preset.name})",
        table_headers(METHODS),
        format_rows(rows, METHODS),
    )
    becho("(*) GE column reuses the STE run: constant error model (section IV-B)")

    tuned = [r for r in rows if r.fine_tuned]
    assert tuned, "at least some multipliers must need fine-tuning"

    # Same tendency as Table V: the proposal is near-best on most rows
    # (wide margin — smoke-scale runs have tens of SGD steps).
    wins = sum(
        1 for r in tuned if r.final["approxkd_ge"] >= max(r.final.values()) - 0.08
    )
    assert wins >= 0.5 * len(tuned)

    # GE degenerates to STE on every EvoApprox row.
    for r in tuned:
        if r.multiplier.startswith("evoapprox"):
            assert r.final["ge"] == r.final["normal"]
            assert r.final["approxkd_ge"] == r.final["approxkd"]

    # Fine-tuning recovers accuracy: the best method always improves on the
    # initial accuracy (allowing small evaluation noise).
    for r in tuned:
        assert max(r.final.values()) >= r.initial_accuracy - 0.02
