"""Figures 2 and 3 — estimated approximation-error functions.

- Fig. 2: error of *truncated multiplier 5* vs the exact GEMM output — a
  biased error with a clearly negative slope, fitted as
  ``f(y) = min(a, max(k·y + c, b))`` with ``k < 0``.
- Fig. 3: error of *EvoApprox 228* — unbiased, fitted only as a constant,
  hence ``∂f/∂y = 0`` and GE degenerates to the STE.

The benchmark prints an ASCII rendering of the binned error profile plus the
fitted parameters, and asserts the qualitative shapes.
"""

import numpy as np
import pytest

from benchmarks.conftest import becho

from repro.approx import get_multiplier
from repro.ge import fit_error_model, profile_multiplier_error


def _binned_profile(profile, bins=13):
    edges = np.linspace(profile.y.min(), profile.y.max(), bins + 1)
    centers, means = [], []
    for lo, hi in zip(edges, edges[1:]):
        mask = (profile.y >= lo) & (profile.y < hi)
        if mask.sum() < 10:
            continue
        centers.append(0.5 * (lo + hi))
        means.append(profile.eps[mask].mean())
    return np.array(centers), np.array(means)


def _ascii_plot(centers, means, model, width=52):
    lo, hi = min(means.min(), model.lower), max(means.max(), model.upper)
    span = hi - lo or 1.0
    lines = []
    for c, m in zip(centers, means):
        pos = int((m - lo) / span * (width - 1))
        fit = int((model(np.array([c]))[0] - lo) / span * (width - 1))
        row = [" "] * width
        row[fit] = "-"
        row[pos] = "*"
        lines.append(f"y={c:9.1f} |{''.join(row)}|")
    return "\n".join(lines)


@pytest.mark.benchmark(group="fig2")
def test_fig2_truncated5_error_function(benchmark):
    mult = get_multiplier("truncated5")

    def run():
        profile = profile_multiplier_error(mult, num_simulations=50, rng=0)
        model = fit_error_model(profile.y, profile.eps)
        return profile, model

    profile, model = benchmark.pedantic(run, rounds=1, iterations=1)
    centers, means = _binned_profile(profile)
    becho("\n=== Fig. 2: error of truncated multiplier 5 (binned mean *, fit -) ===")
    becho(_ascii_plot(centers, means, model))
    becho(
        f"fit: f(y) = min({model.upper:.1f}, max({model.k:.4f}*y + {model.c:.2f}, "
        f"{model.lower:.1f}))"
    )

    # Shape criteria from the paper: biased error, negative slope.
    assert model.k < 0
    assert not model.is_constant
    assert profile.eps.mean() == pytest.approx(0.0, abs=abs(profile.eps).max())
    # The binned means themselves must trend downward in y.
    slope = np.polyfit(centers, means, 1)[0]
    assert slope < 0


@pytest.mark.benchmark(group="fig3")
def test_fig3_evoapprox228_error_function(benchmark):
    mult = get_multiplier("evoapprox228")

    def run():
        profile = profile_multiplier_error(mult, num_simulations=50, rng=0)
        model = fit_error_model(profile.y, profile.eps)
        return profile, model

    profile, model = benchmark.pedantic(run, rounds=1, iterations=1)
    centers, means = _binned_profile(profile)
    becho("\n=== Fig. 3: error of EvoApprox 228 (binned mean *, fit -) ===")
    becho(_ascii_plot(centers, means, model))
    becho(f"fit: constant f(y) = {model.c:.2f}  (∂f/∂y = {model.k})")

    # Shape criteria: unbiased error -> constant fit -> GE == STE.
    assert model.is_constant
    # Binned means stay near zero relative to the error spread.
    assert np.abs(means).max() < 0.2 * profile.eps.std() + 1e-9
