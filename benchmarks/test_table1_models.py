"""Table I — evaluated CNNs: #params, #MAC ops, FP accuracy.

Paper values (CIFAR10, 32x32):

    CNN          #Params(x10^6)  #MACs(x10^9)  FP Acc [%]
    ResNet20     0.3             0.041         91.04
    ResNet32     0.5             0.069         91.88
    MobileNetV2  2.2             0.296         94.89

The parameter and MAC columns are reproduced *exactly* at full width; the
accuracy column comes from the bench preset's scaled-down training run on
the synthetic dataset (see conftest), so only its ordering is meaningful.
"""

import pytest

from benchmarks.conftest import print_table
from repro.models import mobilenetv2, resnet20, resnet32
from repro.sim import count_macs, evaluate_accuracy

PAPER_ROWS = {
    "ResNet20": (0.3, 0.041, 91.04),
    "ResNet32": (0.5, 0.069, 91.88),
    "MobileNetV2": (2.2, 0.296, 94.89),
}


@pytest.mark.benchmark(group="table1")
def test_table1_model_inventory(
    benchmark, fp_resnet20, fp_resnet32, fp_mobilenetv2, bench_dataset
):
    full_models = {
        "ResNet20": resnet20(rng=0),
        "ResNet32": resnet32(rng=0),
        "MobileNetV2": mobilenetv2(rng=0),
    }
    bench_models = {
        "ResNet20": fp_resnet20,
        "ResNet32": fp_resnet32,
        "MobileNetV2": fp_mobilenetv2,
    }

    def run():
        rows = []
        for name, model in full_models.items():
            report = count_macs(model, (3, 32, 32))
            acc = evaluate_accuracy(
                bench_models[name], bench_dataset.test_x, bench_dataset.test_y
            )
            paper_params, paper_macs, paper_acc = PAPER_ROWS[name]
            rows.append(
                [
                    name,
                    f"{report.params / 1e6:.2f} (paper {paper_params})",
                    f"{report.total_macs / 1e9:.3f} (paper {paper_macs})",
                    f"{100 * acc:.2f} (paper {paper_acc})",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Table I: Evaluated CNNs",
        ["CNN", "#Params(x1e6)", "#MACs(x1e9)", "Acc[%] (bench-scale)"],
        rows,
    )

    # Shape criteria: params and MACs must match the paper at full width.
    for name, model in full_models.items():
        report = count_macs(model, (3, 32, 32))
        paper_params, paper_macs, _ = PAPER_ROWS[name]
        assert report.params / 1e6 == pytest.approx(paper_params, rel=0.15)
        assert report.total_macs / 1e9 == pytest.approx(paper_macs, rel=0.05)
