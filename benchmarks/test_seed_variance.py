"""Seed-variance quantification for the smoke-scale comparisons.

Not a paper artifact: this benchmark measures how much the fine-tuning
outcome moves across seeds at the smoke budget, which calibrates how to
read the single-seed method tables (Tables V-VII). It replicates the
normal and ApproxKD+GE methods on ResNet20 + truncated-5 across seeds and
prints mean ± std for each.
"""

import pytest

from benchmarks.conftest import print_table
from repro.pipeline import replicate_approximation_stage

SEEDS = (0, 1, 2)


@pytest.mark.benchmark(group="variance")
def test_seed_variance(benchmark, quant_resnet20, bench_dataset, approx_train_config):
    def run():
        summaries = {}
        for method in ("normal", "approxkd_ge"):
            summaries[method] = replicate_approximation_stage(
                quant_resnet20,
                bench_dataset,
                "truncated5",
                method=method,
                train_config=approx_train_config,
                seeds=SEEDS,
                temperature=5.0,
            )
        return summaries

    summaries = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Seed variance (ResNet20 + truncated-5, 3 seeds)",
        ["Method", "mean[%]", "std[%]", "min[%]", "max[%]"],
        [
            [
                s.method,
                100 * s.mean,
                100 * s.std,
                100 * s.min,
                100 * s.max,
            ]
            for s in summaries.values()
        ],
    )
    normal = summaries["normal"]
    proposed = summaries["approxkd_ge"]
    if normal.overlaps(proposed):
        print_table(
            "Interpretation",
            ["note"],
            [["method intervals overlap at this budget; single-seed tables are indicative"]],
        )

    # Sanity: every seed recovers above random guessing.
    assert normal.min > 0.12
    assert proposed.min > 0.12
    # The proposal's mean is not behind the baseline beyond one sigma.
    assert proposed.mean >= normal.mean - max(normal.std, 0.05)
