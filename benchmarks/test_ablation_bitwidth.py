"""Ablation — bit-width sweep (the paper's outlook: "extended for lower
bitwidth quantization").

Quantizes the same trained FP ResNet20 at several weight bit-widths (8-bit
activations throughout, per the paper's 8AxW setting) and reports accuracy
before fine-tuning. Shape criterion: accuracy is monotone non-decreasing in
weight bits, with 8A8W ≈ FP (the well-known lossless-8-bit result [1], [2])
and a sharp drop somewhere below 4 bits.
"""

import pytest

from benchmarks.conftest import print_table
from repro.data.dataloader import iterate_batches
from repro.distill import clone_model
from repro.quant import QConfig, calibrate_model, quantize_model
from repro.sim import evaluate_accuracy

WEIGHT_BITS = (2, 3, 4, 6, 8)


@pytest.mark.benchmark(group="ablation")
def test_ablation_weight_bitwidth(benchmark, fp_resnet20, bench_dataset, preset):
    def run():
        accs = {}
        for bits in WEIGHT_BITS:
            model = quantize_model(
                clone_model(fp_resnet20), qconfig=QConfig(weight_bits=bits)
            )
            calibrate_model(
                model,
                iterate_batches(
                    bench_dataset.train_x,
                    bench_dataset.train_y,
                    preset.batch_size,
                    shuffle=False,
                ),
                max_batches=4,
            )
            accs[bits] = evaluate_accuracy(
                model, bench_dataset.test_x, bench_dataset.test_y
            )
        return accs

    accs = benchmark.pedantic(run, rounds=1, iterations=1)
    fp_acc = evaluate_accuracy(fp_resnet20, bench_dataset.test_x, bench_dataset.test_y)
    print_table(
        "Ablation: weight bit-width at 8-bit activations (before FT)",
        ["Config", "Acc[%]"],
        [[f"8A{bits}W", 100 * acc] for bits, acc in accs.items()]
        + [["FP reference", 100 * fp_acc]],
    )

    # 8A8W matches FP closely without fine-tuning (the [1], [2] result).
    assert accs[8] >= fp_acc - 0.05
    # More weight bits never hurt much (allow small evaluation noise).
    ordered = [accs[b] for b in WEIGHT_BITS]
    for lower, higher in zip(ordered, ordered[1:]):
        assert higher >= lower - 0.05
