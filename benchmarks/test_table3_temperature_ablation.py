"""Table III — ApproxKD temperature ablation on ResNet20.

The paper sweeps T2 ∈ {1, 2, 5, 10} for every approximate multiplier and
reports worst/best temperature with their final accuracies. Its headline
observations, asserted here as shape criteria:

- EvoApprox 249 (MRE 48.8%) stays at random guessing for every temperature.
- For the remaining multipliers, fine-tuning improves over the initial
  (pre-fine-tuning) accuracy at the best temperature.
- Across the large-MRE group, high temperatures (5/10) win more often than
  low ones; across the small-MRE group the preference is weaker or reversed
  — reproducing the paper's MRE-temperature correlation.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from benchmarks.method_table import adaptive_train_config
from repro.approx import TABLE3_MULTIPLIERS, get_multiplier, mean_relative_error, paper_mre
from repro.distill import TEMPERATURE_GRID
from repro.pipeline import approximation_stage
from repro.sim import approximate_execution, evaluate_accuracy

PAPER_BEST_TEMP = {
    "truncated3": 2,
    "truncated4": 5,
    "truncated5": 5,
    "evoapprox470": 2,
    "evoapprox29": 5,
    "evoapprox111": 5,
    "evoapprox104": 10,
    "evoapprox469": 10,
    "evoapprox228": 10,
    "evoapprox145": 10,
    "evoapprox249": None,  # never recovers
}


@pytest.mark.benchmark(group="table3")
def test_table3_temperature_ablation(benchmark, quant_resnet20, bench_dataset, approx_train_config):
    def run():
        reference = evaluate_accuracy(
            quant_resnet20, bench_dataset.test_x, bench_dataset.test_y
        )
        results = {}
        for name in TABLE3_MULTIPLIERS:
            with approximate_execution(quant_resnet20, name):
                initial = evaluate_accuracy(
                    quant_resnet20, bench_dataset.test_x, bench_dataset.test_y
                )
            config = adaptive_train_config(approx_train_config, initial, reference)
            per_temp = {}
            for temp in TEMPERATURE_GRID:
                _, result = approximation_stage(
                    quant_resnet20,
                    bench_dataset,
                    name,
                    method="approxkd",
                    train_config=config,
                    temperature=temp,
                )
                per_temp[temp] = result.accuracy_after
                initial = result.accuracy_before
            results[name] = (initial, per_temp)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, (initial, per_temp) in results.items():
        best_t = max(per_temp, key=per_temp.get)
        worst_t = min(per_temp, key=per_temp.get)
        mult = get_multiplier(name)
        rows.append(
            [
                name,
                f"{100 * mean_relative_error(mult):.1f}",
                f"{100 * (paper_mre(name) or 0):.1f}",
                f"{100 * mult.energy_savings:.0f}",
                f"{worst_t:g}",
                f"{best_t:g} (paper {PAPER_BEST_TEMP[name]})",
                f"{100 * initial:.2f}",
                f"{100 * per_temp[worst_t]:.2f}",
                f"{100 * per_temp[best_t]:.2f}",
            ]
        )
    print_table(
        "Table III: ApproxKD temperature ablation (ResNet20)",
        [
            "Multiplier",
            "MRE[%]",
            "paperMRE[%]",
            "Sav[%]",
            "worstT",
            "bestT",
            "InitAcc[%]",
            "worstAcc[%]",
            "bestAcc[%]",
        ],
        rows,
    )

    # --- shape criteria ---------------------------------------------------
    initial_249, per_temp_249 = results["evoapprox249"]
    assert max(per_temp_249.values()) < 0.45, "evoapprox249 must stay near chance"

    recoverable = [n for n in TABLE3_MULTIPLIERS if n != "evoapprox249"]
    improved = sum(
        1
        for n in recoverable
        if max(results[n][1].values()) >= results[n][0] - 0.05
    )
    assert improved >= len(recoverable) - 1, "fine-tuning should not hurt"

    # MRE-temperature correlation: among high-MRE multipliers, a high
    # temperature (>= 5) should win for at least some of them. The paper's
    # clean majority needs the full training budget; at tens of SGD steps
    # per run the per-multiplier best temperature is noisy, so the hard
    # assertion is existential and the observed fractions are printed in
    # the table for qualitative comparison.
    high_mre = [
        n
        for n in recoverable
        if mean_relative_error(get_multiplier(n)) > 0.15
    ]
    if high_mre:
        highs = sum(1 for n in high_mre if max(results[n][1], key=results[n][1].get) >= 5)
        assert highs >= 1, "no high-MRE multiplier preferred a high temperature"
