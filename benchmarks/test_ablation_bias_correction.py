"""Ablation — truncated multipliers with vs without bias correction.

The paper evaluates truncated multipliers "without bias correction"; their
one-sided error is exactly what gives gradient estimation a non-zero slope
to exploit. This ablation compares, for truncated-4/5:

- initial accuracy with and without a constant bias correction, and
- the fitted error-model slope (bias correction flattens it, pushing GE
  back toward the plain STE).
"""

import pytest

from benchmarks.conftest import print_table
from repro.approx import error_bias_ratio, get_multiplier, mean_relative_error
from repro.ge import estimate_error_model
from repro.sim import approximate_execution, evaluate_accuracy

PAIRS = [("truncated4", "truncated4bc"), ("truncated5", "truncated5bc")]


@pytest.mark.benchmark(group="ablation")
def test_ablation_bias_correction(benchmark, quant_resnet20, bench_dataset):
    def run():
        rows = []
        for plain_name, corrected_name in PAIRS:
            for name in (plain_name, corrected_name):
                mult = get_multiplier(name)
                with approximate_execution(quant_resnet20, mult):
                    acc = evaluate_accuracy(
                        quant_resnet20, bench_dataset.test_x, bench_dataset.test_y
                    )
                model = estimate_error_model(mult, rng=0)
                rows.append(
                    [
                        name,
                        100 * mean_relative_error(mult),
                        error_bias_ratio(mult),
                        f"{model.k:+.4f}",
                        100 * acc,
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: truncation bias correction (ResNet20, no fine-tuning)",
        ["Multiplier", "MRE[%]", "bias ratio", "fitted slope k", "Acc[%]"],
        rows,
    )

    by_name = {r[0]: r for r in rows}
    for plain_name, corrected_name in PAIRS:
        plain, corrected = by_name[plain_name], by_name[corrected_name]
        # Correction removes the bias and flattens the error slope.
        assert corrected[2] < plain[2]
        assert abs(float(corrected[3])) < abs(float(plain[3]))
        # Without retraining, removing the bias should not hurt accuracy
        # much — usually it helps at equal truncation depth.
        assert corrected[4] >= plain[4] - 8.0
