"""Shared benchmark fixtures: datasets and pre-trained models.

Every table/figure benchmark reproduces the *rows* of its paper counterpart
on CPU-feasible stand-ins: the same architectures at reduced width, the
synthetic dataset instead of CIFAR10, and short fine-tuning budgets. The
``REPRO_BENCH_PRESET`` environment variable selects the scale:

- ``smoke`` (default): minutes on a laptop CPU; qualitative shape only.
- ``full``: closer to the paper's budgets (hours); same code paths.

Model preparation (FP pre-training + quantization stage) is session-scoped
so the per-table benchmarks time only the experiment itself.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass

import pytest

from repro.data import make_synthetic_cifar
from repro.models import mobilenetv2, resnet20, resnet32
from repro.pipeline import quantization_stage
from repro.train import TrainConfig, cross_entropy_loss, train_model


@dataclass(frozen=True)
class BenchPreset:
    """Scale knobs shared by all table/figure benchmarks."""

    name: str
    width_mult: float
    image_size: int
    num_train: int
    num_test: int
    noise: float
    fp_epochs: int
    quant_epochs: int
    approx_epochs: int
    batch_size: int          # FP pre-training batch
    quant_batch_size: int    # quantization-stage fine-tuning batch
    approx_batch_size: int   # approximation-stage fine-tuning batch
    fp_lr: float
    quant_lr: float
    approx_lr: float
    grad_clip: float


# A shallow MobileNetV2 stack used only at smoke scale: same inverted-
# residual structure, fewer repeats per stage (the full 17-block model is
# CPU-prohibitive inside the integer simulation loop).
SMOKE_MBV2_CONFIG = (
    (1, 16, 1, 1),
    (6, 24, 1, 1),
    (6, 32, 1, 1),
    (6, 64, 2, 2),
    (6, 96, 1, 1),
    (6, 160, 1, 2),
    (6, 320, 1, 1),
)

PRESETS = {
    "smoke": BenchPreset(
        name="smoke",
        width_mult=0.25,
        image_size=16,
        num_train=480,
        num_test=200,
        noise=0.4,
        fp_epochs=12,
        quant_epochs=2,
        approx_epochs=4,
        batch_size=64,
        quant_batch_size=48,
        approx_batch_size=16,  # small batches -> more STE steps per epoch
        fp_lr=0.05,
        quant_lr=0.005,
        approx_lr=0.01,
        grad_clip=1.0,
    ),
    "full": BenchPreset(
        name="full",
        width_mult=1.0,
        image_size=32,
        num_train=4000,
        num_test=1000,
        noise=0.7,
        fp_epochs=30,
        quant_epochs=10,
        approx_epochs=30,
        batch_size=128,
        quant_batch_size=128,
        approx_batch_size=64,
        fp_lr=0.05,
        quant_lr=0.002,
        approx_lr=0.005,
        grad_clip=1.0,
    ),
}


def get_preset() -> BenchPreset:
    name = os.environ.get("REPRO_BENCH_PRESET", "smoke")
    if name not in PRESETS:
        raise KeyError(f"unknown REPRO_BENCH_PRESET={name!r}; options: {sorted(PRESETS)}")
    return PRESETS[name]


@pytest.fixture(scope="session")
def preset() -> BenchPreset:
    return get_preset()


@pytest.fixture(scope="session")
def bench_dataset(preset):
    return make_synthetic_cifar(
        num_train=preset.num_train,
        num_test=preset.num_test,
        image_size=preset.image_size,
        noise=preset.noise,
        seed=42,
    )


def _pretrain(model, dataset, preset):
    config = TrainConfig(
        epochs=preset.fp_epochs,
        batch_size=preset.batch_size,
        lr=preset.fp_lr,
        momentum=0.9,
        seed=0,
    )
    train_model(model, dataset, cross_entropy_loss(), config)
    model.eval()
    return model


def _quantize(fp_model, dataset, preset, fold_bn=True):
    config = TrainConfig(
        epochs=preset.quant_epochs,
        batch_size=preset.quant_batch_size,
        lr=preset.quant_lr,
        momentum=0.9,
        grad_clip=preset.grad_clip,
        seed=0,
    )
    model, result = quantization_stage(
        fp_model, dataset, train_config=config, temperature=1.0, fold_bn=fold_bn
    )
    model.eval()
    return model, result


@pytest.fixture(scope="session")
def fp_resnet20(bench_dataset, preset):
    return _pretrain(resnet20(width_mult=preset.width_mult, rng=0), bench_dataset, preset)


@pytest.fixture(scope="session")
def quant_resnet20(fp_resnet20, bench_dataset, preset):
    model, _ = _quantize(fp_resnet20, bench_dataset, preset)
    return model


@pytest.fixture(scope="session")
def fp_resnet32(bench_dataset, preset):
    return _pretrain(resnet32(width_mult=preset.width_mult, rng=0), bench_dataset, preset)


@pytest.fixture(scope="session")
def quant_resnet32(fp_resnet32, bench_dataset, preset):
    model, _ = _quantize(fp_resnet32, bench_dataset, preset)
    return model


@pytest.fixture(scope="session")
def fp_mobilenetv2(bench_dataset, preset):
    kwargs = {}
    if preset.name == "smoke":
        kwargs["inverted_residual_config"] = SMOKE_MBV2_CONFIG
    return _pretrain(
        mobilenetv2(width_mult=preset.width_mult, rng=0, **kwargs),
        bench_dataset,
        preset,
    )


@pytest.fixture(scope="session")
def quant_mobilenetv2(fp_mobilenetv2, bench_dataset, preset):
    # The paper keeps BN layers in MobileNetV2 (section IV).
    model, _ = _quantize(fp_mobilenetv2, bench_dataset, preset, fold_bn=False)
    return model


@pytest.fixture(scope="session")
def approx_train_config(preset):
    return TrainConfig(
        epochs=preset.approx_epochs,
        batch_size=preset.approx_batch_size,
        lr=preset.approx_lr,
        momentum=0.9,
        lr_decay=0.1,
        lr_decay_every=15,
        grad_clip=preset.grad_clip,
        seed=0,
    )


# Regenerated paper tables are buffered here and flushed to the terminal
# after pytest's capture ends (see pytest_terminal_summary below), so they
# appear in plain ``pytest benchmarks/ --benchmark-only`` output.
_REPORT_LINES: list[str] = []


def becho(*lines) -> None:
    """Record benchmark report lines for the end-of-run summary.

    Also prints immediately (visible under ``-s``); the terminal-summary
    hook replays everything for captured runs.
    """
    for line in lines:
        for part in str(line).split("\n"):
            _REPORT_LINES.append(part)
            print(part)


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    if not _REPORT_LINES:
        return
    terminalreporter.section("regenerated paper tables and figures")
    for line in _REPORT_LINES:
        terminalreporter.write_line(line)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render one paper-style table to the real stdout."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    becho(f"\n=== {title} ===", line, "-" * len(line))
    for row in str_rows:
        becho("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
