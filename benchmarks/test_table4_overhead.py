"""Table IV — computational overhead of ApproxKD and GE.

The paper reports fine-tuning wall times relative to normal fine-tuning
(2027 s for 30 epochs in ProxSim), with ApproxKD+GE costing only ~17% more.
This benchmark times one fine-tuning run per method on the same model,
multiplier and epoch budget, and prints the relative overhead.

Shape criterion: the proposed methods cost well under 2x normal fine-tuning
(the paper's point is that the accuracy gain is nearly free).
"""

import time

import pytest

from benchmarks.conftest import print_table
from repro.pipeline import approximation_stage

PAPER_OVERHEAD = {"normal": 0.0, "ge": None, "alpha": None, "approxkd": None, "approxkd_ge": 0.17}
METHOD_ORDER = ("normal", "ge", "alpha", "approxkd", "approxkd_ge")


@pytest.mark.benchmark(group="table4")
def test_table4_computational_overhead(
    benchmark, quant_resnet20, bench_dataset, approx_train_config
):
    def run():
        times = {}
        for method in METHOD_ORDER:
            start = time.perf_counter()
            approximation_stage(
                quant_resnet20,
                bench_dataset,
                "truncated5",
                method=method,
                train_config=approx_train_config,
                temperature=5.0,
            )
            times[method] = time.perf_counter() - start
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    base = times["normal"]
    rows = []
    for method in METHOD_ORDER:
        overhead = times[method] / base - 1.0
        paper = PAPER_OVERHEAD.get(method)
        paper_txt = f"{100 * paper:.0f}" if paper is not None else "-"
        rows.append(
            [method, f"{times[method]:.1f}", f"{100 * overhead:+.0f}", paper_txt]
        )
    print_table(
        "Table IV: fine-tuning wall time (truncated-5, ResNet20)",
        ["Method", "time [s]", "overhead vs normal [%]", "paper overhead [%]"],
        rows,
    )

    # Shape criteria: the full proposal stays in the same cost class as
    # normal fine-tuning (paper: +17%; we allow generous CPU noise).
    assert times["approxkd_ge"] < 2.5 * base
    assert times["approxkd"] < 2.5 * base
